#include "ps/worker.h"

#include <algorithm>

#include "data/batch.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/adam.h"
#include "optim/param_snapshot.h"
#include "tensor/tensor_ops.h"

namespace mamdr {
namespace ps {
namespace {

std::vector<int64_t> Dedup(std::vector<int64_t> rows) {
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  return rows;
}

}  // namespace

RowExtractor MakeDefaultRowExtractor(models::CtrModel* model,
                                     const models::ModelConfig& config,
                                     std::vector<bool>* is_embedding_out) {
  // Resolve the FeatureEncoder tables by qualified parameter name.
  struct TableInfo {
    int64_t index = -1;
    enum Kind { kUser, kItem, kUserGroup, kItemCat } kind = kUser;
  };
  std::vector<TableInfo> tables;
  const auto named = model->NamedParameters();
  if (is_embedding_out != nullptr) {
    is_embedding_out->assign(named.size(), false);
  }
  for (size_t i = 0; i < named.size(); ++i) {
    const std::string& name = named[i].first;
    TableInfo info;
    info.index = static_cast<int64_t>(i);
    if (name.find("user_emb.table") != std::string::npos) {
      info.kind = TableInfo::kUser;
    } else if (name.find("item_emb.table") != std::string::npos) {
      info.kind = TableInfo::kItem;
    } else if (name.find("user_group_emb.table") != std::string::npos) {
      info.kind = TableInfo::kUserGroup;
    } else if (name.find("item_cat_emb.table") != std::string::npos) {
      info.kind = TableInfo::kItemCat;
    } else {
      continue;
    }
    tables.push_back(info);
    if (is_embedding_out != nullptr) (*is_embedding_out)[i] = true;
  }
  const int64_t groups = config.num_user_groups;
  const int64_t cats = config.num_item_cats;
  return [tables, groups, cats](const data::Batch& batch) {
    std::vector<TouchedRows> out;
    out.reserve(tables.size());
    for (const auto& t : tables) {
      TouchedRows tr;
      tr.param_index = t.index;
      switch (t.kind) {
        case TableInfo::kUser:
          tr.rows = batch.users;
          break;
        case TableInfo::kItem:
          tr.rows = batch.items;
          break;
        case TableInfo::kUserGroup:
          tr.rows.reserve(batch.users.size());
          for (int64_t u : batch.users) tr.rows.push_back(u % groups);
          break;
        case TableInfo::kItemCat:
          tr.rows.reserve(batch.items.size());
          for (int64_t v : batch.items) tr.rows.push_back(v % cats);
          break;
      }
      out.push_back(std::move(tr));
    }
    return out;
  };
}

Worker::Worker(int64_t id, std::unique_ptr<models::CtrModel> model,
               std::unique_ptr<PsClient> client,
               const data::MultiDomainDataset* dataset, WorkerConfig config,
               RowExtractor extractor)
    : id_(id),
      model_(std::move(model)),
      client_(std::move(client)),
      dataset_(dataset),
      config_(std::move(config)),
      extractor_(std::move(extractor)),
      rng_(config_.train.seed + static_cast<uint64_t>(id) * 7919),
      retry_(config_.retry,
             config_.train.seed + static_cast<uint64_t>(id) * 15485863) {
  MAMDR_CHECK(model_ != nullptr);
  MAMDR_CHECK(client_ != nullptr);
  MAMDR_CHECK(!config_.domains.empty());
  params_ = model_->Parameters();
  MAMDR_CHECK_EQ(static_cast<int64_t>(params_.size()), client_->num_params());
  caches_.resize(params_.size());
  static_cache_ = optim::Snapshot(params_);
  if (config_.run_dr) {
    store_ = std::make_unique<core::SharedSpecificStore>(
        params_, dataset_->num_domains());
    core::TrainConfig dr_cfg = config_.train;
    dr_cfg.seed = config_.train.seed + static_cast<uint64_t>(id) * 104729;
    dr_ = std::make_unique<core::DomainRegularization>(model_.get(), dataset_,
                                                       dr_cfg, store_.get());
  }
}

Worker::~Worker() = default;

const EmbeddingCache& Worker::cache(int64_t param_index) const {
  return caches_[static_cast<size_t>(param_index)];
}

Status Worker::CallPs(const char* what, const std::function<Status()>& op) {
  static obs::Counter* ps_calls =
      obs::Registry::Global().counter("ps.worker.calls");
  ps_calls->Add();
  return retry_.Run(op, what);
}

Status Worker::EnsureRowsFresh(const data::Batch& batch) {
  for (const auto& touched : extractor_(batch)) {
    const size_t idx = static_cast<size_t>(touched.param_index);
    Tensor local_view = params_[idx].mutable_value();  // shares storage
    if (config_.use_embedding_cache) {
      // Dynamic-cache path: only missing rows go to the PS; pulled values
      // also seed the static-cache so the epoch-end delta has a base.
      std::vector<int64_t> misses =
          caches_[idx].TouchAndGetMisses(touched.rows);
      if (!misses.empty()) {
        MAMDR_RETURN_IF_ERROR(CallPs("PullRows", [&] {
          return client_->PullRows(touched.param_index, misses, &local_view);
        }));
        const int64_t d = local_view.cols();
        for (int64_t r : misses) {
          std::copy(local_view.data() + r * d, local_view.data() + (r + 1) * d,
                    static_cache_[idx].data() + r * d);
        }
      }
    } else {
      // No-cache baseline: every batch pulls its rows fresh.
      const std::vector<int64_t> rows = Dedup(touched.rows);
      MAMDR_RETURN_IF_ERROR(CallPs("PullRows", [&] {
        return client_->PullRows(touched.param_index, rows, &local_view);
      }));
    }
  }
  return Status::OK();
}

Status Worker::PushBatchEmbeddingGrads(const data::Batch& batch) {
  // Synchronous baseline: embedding updates are applied server-side as
  // -lr * grad after every step.
  for (const auto& touched : extractor_(batch)) {
    const size_t idx = static_cast<size_t>(touched.param_index);
    if (!params_[idx].has_grad()) continue;
    const std::vector<int64_t> rows = Dedup(touched.rows);
    MAMDR_RETURN_IF_ERROR(CallPs("PushRowDeltas", [&] {
      return client_->PushRowDeltas(touched.param_index, rows,
                                    params_[idx].grad(),
                                    -config_.train.inner_lr);
    }));
  }
  return Status::OK();
}

Status Worker::RunDnEpoch() { return RunDnEpochOn(config_.domains); }

Status Worker::RunDnEpochOn(const std::vector<int64_t>& domains) {
  obs::TraceSpan span("worker_dn_epoch", "ps");
  // (1)-(2): pull dense parameters from the PS into the local replica; the
  // pulled values are the static-cache base Θ for the outer update.
  std::vector<Tensor> views;
  views.reserve(params_.size());
  for (auto& p : params_) views.push_back(p.mutable_value());
  MAMDR_RETURN_IF_ERROR(
      CallPs("PullDense", [&] { return client_->PullDense(&views); }));
  static_cache_ = optim::Snapshot(params_);
  for (auto& c : caches_) c.Clear();

  // (3): DN inner loop over the domains.
  auto inner = std::make_unique<optim::Adam>(params_, config_.train.inner_lr);
  std::vector<int64_t> order = domains;
  rng_.Shuffle(&order);
  nn::Context ctx{/*training=*/true, &rng_};
  data::Batch batch;
  for (int64_t d : order) {
    data::Batcher batcher(&dataset_->domain(d).train, config_.train.batch_size,
                          &rng_);
    int64_t batches = 0;
    while (batcher.Next(&batch)) {
      MAMDR_RETURN_IF_ERROR(EnsureRowsFresh(batch));
      inner->ZeroGrad();
      model_->Loss(batch, d, ctx).Backward();
      if (!config_.use_embedding_cache) {
        MAMDR_RETURN_IF_ERROR(PushBatchEmbeddingGrads(batch));
      }
      inner->Step();
      ++batches;
      if (config_.train.dn_max_batches > 0 &&
          batches >= config_.train.dn_max_batches) {
        break;
      }
    }
  }

  // (4): push the meta-delta Θ̃ − Θ; the server applies Eq. 3 with β.
  std::vector<Tensor> dense_delta(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    if (client_->is_embedding(static_cast<int64_t>(i))) continue;
    dense_delta[i] = ops::Sub(params_[i].value(), static_cache_[i]);
  }
  MAMDR_RETURN_IF_ERROR(CallPs("PushDenseDelta", [&] {
    return client_->PushDenseDelta(dense_delta, config_.train.outer_lr);
  }));
  if (config_.use_embedding_cache) {
    for (size_t i = 0; i < params_.size(); ++i) {
      if (!client_->is_embedding(static_cast<int64_t>(i))) continue;
      const std::vector<int64_t> rows = caches_[i].CachedRows();
      if (rows.empty()) continue;
      Tensor delta = ops::Sub(params_[i].value(), static_cache_[i]);
      MAMDR_RETURN_IF_ERROR(CallPs("PushRowDeltas", [&] {
        return client_->PushRowDeltas(static_cast<int64_t>(i), rows, delta,
                                      config_.train.outer_lr);
      }));
    }
  }
  return Status::OK();
}

Status Worker::RunDrPhase() {
  if (!config_.run_dr) return Status::OK();
  obs::TraceSpan span("worker_dr_phase", "ps");
  // Refresh the full parameter state from the PS as the shared basis θS.
  MAMDR_RETURN_IF_ERROR(RestoreFromPs());
  store_->UpdateSharedFromParams();
  for (int64_t d : config_.domains) dr_->DrForDomain(d);
  return Status::OK();
}

Status Worker::RestoreFromPs() {
  obs::TraceSpan span("worker_restore_from_ps", "ps");
  static obs::Counter* restores =
      obs::Registry::Global().counter("ps.worker.restores");
  restores->Add();
  std::vector<Tensor> views;
  views.reserve(params_.size());
  for (auto& p : params_) views.push_back(p.mutable_value());
  MAMDR_RETURN_IF_ERROR(
      CallPs("PullDense", [&] { return client_->PullDense(&views); }));
  for (size_t i = 0; i < params_.size(); ++i) {
    if (!client_->is_embedding(static_cast<int64_t>(i))) continue;
    Tensor view = params_[i].mutable_value();
    MAMDR_RETURN_IF_ERROR(CallPs("PullFullTable", [&] {
      return client_->PullFullTable(static_cast<int64_t>(i), &view);
    }));
  }
  // The replica is now exactly the PS state: any partial inner-loop progress
  // is gone, so the delta base and row caches must restart from here.
  static_cache_ = optim::Snapshot(params_);
  for (auto& c : caches_) c.Clear();
  return Status::OK();
}

}  // namespace ps
}  // namespace mamdr
