#include "ps/embedding_cache.h"

#include <algorithm>

#include "obs/metrics.h"

namespace mamdr {
namespace ps {

namespace {
// Aggregated over every cache instance in the process. Hit/miss totals are a
// pure function of the training workload (each worker owns its cache and its
// batch sequence), so they stay in the deterministic export (kStable).
obs::Counter* cache_hits() {
  static obs::Counter* c =
      obs::Registry::Global().counter("ps.embedding_cache.hits");
  return c;
}
obs::Counter* cache_misses() {
  static obs::Counter* c =
      obs::Registry::Global().counter("ps.embedding_cache.misses");
  return c;
}
obs::Counter* cache_clears() {
  static obs::Counter* c =
      obs::Registry::Global().counter("ps.embedding_cache.clears");
  return c;
}
obs::Counter* stale_rows_evicted() {
  static obs::Counter* c =
      obs::Registry::Global().counter("ps.embedding_cache.stale_rows_evicted");
  return c;
}
}  // namespace

std::vector<int64_t> EmbeddingCache::TouchAndGetMisses(
    const std::vector<int64_t>& rows) {
  std::vector<int64_t> misses;
  uint64_t hits = 0;
  {
    MutexLock lock(&mu_);
    for (int64_t r : rows) {
      if (cached_.insert(r).second) {
        misses.push_back(r);
      } else {
        ++hits;
      }
    }
  }
  // Stats and registry counters update outside the row-set lock: one
  // batched relaxed add each, so observers never serialize the worker.
  if (hits > 0) hits_.fetch_add(hits, std::memory_order_relaxed);
  // Deduplicate (rows may repeat within a batch; a repeat insert fails and
  // is counted as a hit above, so `misses` is already unique in practice).
  std::sort(misses.begin(), misses.end());
  misses.erase(std::unique(misses.begin(), misses.end()), misses.end());
  if (!misses.empty()) {
    misses_.fetch_add(misses.size(), std::memory_order_relaxed);
  }
  if (hits > 0) cache_hits()->Add(hits);
  if (!misses.empty()) cache_misses()->Add(misses.size());
  return misses;
}

std::vector<int64_t> EmbeddingCache::CachedRows() const {
  MutexLock lock(&mu_);
  std::vector<int64_t> out(cached_.begin(), cached_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void EmbeddingCache::Clear() {
  MutexLock lock(&mu_);
  // Rows dropped here were still valid locally but are now stale relative to
  // the PS and must be re-pulled — the staleness signal of the cache design.
  if (!cached_.empty()) stale_rows_evicted()->Add(cached_.size());
  cache_clears()->Add();
  cached_.clear();
}

}  // namespace ps
}  // namespace mamdr
