#include "ps/embedding_cache.h"

#include <algorithm>

namespace mamdr {
namespace ps {

std::vector<int64_t> EmbeddingCache::TouchAndGetMisses(
    const std::vector<int64_t>& rows) {
  MutexLock lock(&mu_);
  std::vector<int64_t> misses;
  for (int64_t r : rows) {
    if (cached_.insert(r).second) {
      misses.push_back(r);
      ++stats_.misses;
    } else {
      ++stats_.hits;
    }
  }
  // Deduplicate (rows may repeat within a batch).
  std::sort(misses.begin(), misses.end());
  misses.erase(std::unique(misses.begin(), misses.end()), misses.end());
  return misses;
}

std::vector<int64_t> EmbeddingCache::CachedRows() const {
  MutexLock lock(&mu_);
  std::vector<int64_t> out(cached_.begin(), cached_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void EmbeddingCache::Clear() {
  MutexLock lock(&mu_);
  cached_.clear();
}

}  // namespace ps
}  // namespace mamdr
