#include "ps/distributed_mamdr.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "checkpoint/checkpoint.h"
#include "common/logging.h"
#include "metrics/auc.h"
#include "models/registry.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optim/param_snapshot.h"

namespace mamdr {
namespace ps {

namespace {
// Recovery outcomes are a pure function of the fault plan (kStable); the
// chaos-telemetry test asserts they match RecoveryStats exactly.
struct RecoveryCounters {
  obs::Counter* failed_epochs;
  obs::Counter* respawns;
  obs::Counter* respawn_failures;
  obs::Counter* reassigned_epochs;
  obs::Counter* checkpoint_saves;
  obs::Counter* checkpoint_restores;
};
const RecoveryCounters& recovery_counters() {
  static const RecoveryCounters c{
      obs::Registry::Global().counter("ps.recovery.failed_epochs"),
      obs::Registry::Global().counter("ps.recovery.respawns"),
      obs::Registry::Global().counter("ps.recovery.respawn_failures"),
      obs::Registry::Global().counter("ps.recovery.reassigned_epochs"),
      obs::Registry::Global().counter("ps.checkpoint.saves"),
      obs::Registry::Global().counter("ps.checkpoint.restores"),
  };
  return c;
}
}  // namespace

DistributedMamdr::DistributedMamdr(const models::ModelConfig& model_config,
                                   const data::MultiDomainDataset* dataset,
                                   DistributedConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  MAMDR_CHECK_GT(config_.num_workers, 0);
  MAMDR_CHECK_GT(config_.checkpoint_every, 0);
  // More workers than domains would idle; clamp so worker ids stay dense.
  config_.num_workers =
      std::min<int64_t>(config_.num_workers, dataset_->num_domains());
  // Reference replica defines the layout and initial PS values. All workers
  // use the same seed so every replica starts identical to the PS.
  Rng ref_rng(model_config.seed);
  auto ref = models::CreateModel(config_.model_name, model_config, &ref_rng);
  MAMDR_CHECK(ref.ok()) << ref.status().ToString();
  reference_model_ = std::move(ref).value();
  reference_params_ = reference_model_->Parameters();

  std::vector<bool> is_embedding;
  RowExtractor extractor = MakeDefaultRowExtractor(
      reference_model_.get(), model_config, &is_embedding);
  server_ = std::make_unique<ParameterServer>(
      optim::Snapshot(reference_params_), is_embedding);

  // Greedy balance: largest domain to the currently lightest worker.
  owner_.assign(static_cast<size_t>(dataset_->num_domains()), 0);
  std::vector<int64_t> load(static_cast<size_t>(config_.num_workers), 0);
  std::vector<int64_t> domains(static_cast<size_t>(dataset_->num_domains()));
  std::iota(domains.begin(), domains.end(), 0);
  std::sort(domains.begin(), domains.end(), [&](int64_t a, int64_t b) {
    return dataset_->domain(a).train.size() > dataset_->domain(b).train.size();
  });
  std::vector<std::vector<int64_t>> assignment(
      static_cast<size_t>(config_.num_workers));
  for (int64_t d : domains) {
    const size_t w = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[w].push_back(d);
    owner_[static_cast<size_t>(d)] = static_cast<int64_t>(w);
    load[w] += static_cast<int64_t>(dataset_->domain(d).train.size());
  }

  for (int64_t w = 0; w < config_.num_workers; ++w) {
    Rng wrng(model_config.seed);  // identical init across replicas
    auto m = models::CreateModel(config_.model_name, model_config, &wrng);
    MAMDR_CHECK(m.ok()) << m.status().ToString();
    WorkerConfig wc;
    wc.domains = assignment[static_cast<size_t>(w)];
    wc.train = config_.train;
    wc.use_embedding_cache = config_.use_embedding_cache;
    wc.run_dr = config_.run_dr;
    wc.retry = config_.retry;
    RowExtractor wx = MakeDefaultRowExtractor(m.value().get(), model_config,
                                              nullptr);
    // Client stack: the configured backend (DirectPsClient in-process, or
    // whatever the factory mints — e.g. NetPsClient), optionally decorated
    // with a per-worker FaultInjector whose seed mixes the plan seed with
    // the worker id so every worker sees an independent, reproducible
    // fault stream.
    std::unique_ptr<PsClient> client =
        config_.ps_client_factory
            ? config_.ps_client_factory(w)
            : std::make_unique<DirectPsClient>(server_.get());
    FaultInjector* inj = nullptr;
    if (config_.fault_plan.enabled) {
      FaultConfig fc = config_.fault_plan.faults;
      fc.seed += static_cast<uint64_t>(w) * 2654435761ull;
      auto wrapped = std::make_unique<FaultInjector>(std::move(client), fc);
      inj = wrapped.get();
      client = std::move(wrapped);
    }
    injectors_.push_back(inj);
    workers_.push_back(std::make_unique<Worker>(w, std::move(m).value(),
                                                std::move(client), dataset_,
                                                wc, std::move(wx)));
  }
  admin_client_ = config_.ps_client_factory
                      ? config_.ps_client_factory(-1)
                      : std::make_unique<DirectPsClient>(server_.get());
  const int64_t auto_threads = std::max<int64_t>(
      1, std::min<int64_t>(
             config_.num_workers,
             static_cast<int64_t>(std::thread::hardware_concurrency()) + 1));
  pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(
      config_.pool_threads > 0 ? config_.pool_threads : auto_threads));
}

DistributedMamdr::~DistributedMamdr() = default;

Status DistributedMamdr::RespawnAndRerun(size_t i, bool crash_again) {
  FaultInjector* inj = injectors_[i];
  if (inj != nullptr) {
    inj->Reset();
    if (crash_again && config_.fault_plan.crash_after_ops > 0) {
      inj->ArmCrashAfterOps(config_.fault_plan.crash_after_ops);
    }
  }
  MAMDR_RETURN_IF_ERROR(workers_[i]->RestoreFromPs());
  return workers_[i]->RunDnEpoch();
}

Status DistributedMamdr::TrainEpoch() {
  MAMDR_TRACE_SPAN("distributed_epoch");
  const int64_t epoch = epochs_run_;
  // Arm this epoch's scheduled crash on the round-robin victim.
  if (config_.fault_plan.enabled && config_.fault_plan.crash_after_ops > 0) {
    FaultInjector* inj =
        injectors_[static_cast<size_t>(epoch % num_workers())];
    if (inj != nullptr) {
      inj->ArmCrashAfterOps(config_.fault_plan.crash_after_ops);
    }
  }

  std::vector<Status> results(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    Worker* wp = workers_[i].get();
    Status* slot = &results[i];
    pool_->Submit([wp, slot] { *slot = wp->RunDnEpoch(); });
  }
  pool_->Wait();  // epoch barrier (Parallelized SGD style)

  // Recovery pass: respawn failed workers; reassign domains when the
  // respawn dies too, so the epoch degrades gracefully instead of being
  // lost for those domains.
  const RecoveryCounters& counters = recovery_counters();
  for (size_t i = 0; i < workers_.size(); ++i) {
    if (results[i].ok()) continue;
    ++recovery_.failed_epochs;
    counters.failed_epochs->Add();
    MAMDR_LOG(Warning) << "worker " << i << " failed epoch " << epoch << ": "
                       << results[i].ToString();
    const bool crash_again = epoch == config_.fault_plan.crash_respawn_epoch;
    Status respawned = RespawnAndRerun(i, crash_again);
    if (respawned.ok()) {
      ++recovery_.respawns;
      counters.respawns->Add();
      continue;
    }
    ++recovery_.respawn_failures;
    counters.respawn_failures->Add();
    MAMDR_LOG(Warning) << "worker " << i << " respawn failed: "
                       << respawned.ToString();
    // Find a worker that completed this epoch to adopt the domains.
    Status adopted = Status::Internal("no surviving worker");
    for (size_t j = 0; j < workers_.size(); ++j) {
      if (j == i || !results[j].ok()) continue;
      adopted = workers_[j]->RunDnEpochOn(workers_[i]->domains());
      break;
    }
    if (!adopted.ok()) return adopted;  // epoch unsalvageable
    ++recovery_.reassigned_epochs;
    counters.reassigned_epochs->Add();
  }
  // Disarm any leftover crash schedule and revive dead workers: next epoch
  // starts from a clean fault state (the next scheduled crash re-arms).
  for (FaultInjector* inj : injectors_) {
    if (inj != nullptr) inj->Reset();
  }
  ++epochs_run_;

  if (config_.run_dr) {
    MAMDR_TRACE_SPAN("distributed_dr_phase");
    std::vector<Status> dr_results(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker* wp = workers_[i].get();
      Status* slot = &dr_results[i];
      pool_->Submit([wp, slot] { *slot = wp->RunDrPhase(); });
    }
    pool_->Wait();
    for (const Status& s : dr_results) MAMDR_RETURN_IF_ERROR(s);
  }

  if (!config_.checkpoint_dir.empty() &&
      epochs_run_ % config_.checkpoint_every == 0) {
    MAMDR_RETURN_IF_ERROR(SaveCheckpoint(epochs_run_));
  }
  return Status::OK();
}

Status DistributedMamdr::Train() {
  int64_t start_epoch = 0;
  if (!config_.checkpoint_dir.empty()) {
    auto resumed = RestoreFromCheckpoint();
    if (resumed.ok()) {
      start_epoch = resumed.value();
      MAMDR_LOG(Info) << "resuming from checkpoint at epoch " << start_epoch;
    } else if (resumed.status().code() != StatusCode::kNotFound) {
      // A corrupted checkpoint must never be silently trained on.
      return resumed.status();
    }
  }
  epochs_run_ = start_epoch;

  if (config_.async_epochs) {
    // Barrier-free: each worker runs its full schedule; pulls observe
    // whatever mixture of other workers' pushes the PS holds at that
    // moment. Recovery is worker-side: restore + retry a failed epoch
    // once, then skip it.
    const int64_t epochs = config_.train.epochs - start_epoch;
    const bool run_dr = config_.run_dr;
    std::vector<Status> results(workers_.size());
    for (size_t i = 0; i < workers_.size(); ++i) {
      Worker* wp = workers_[i].get();
      FaultInjector* inj = injectors_[i];
      Status* slot = &results[i];
      pool_->Submit([wp, inj, epochs, run_dr, slot] {
        for (int64_t e = 0; e < epochs; ++e) {
          Status s = wp->RunDnEpoch();
          if (!s.ok()) {
            if (inj != nullptr) inj->Reset();
            s = wp->RestoreFromPs();
            if (s.ok()) s = wp->RunDnEpoch();
            if (!s.ok()) {
              MAMDR_LOG(Warning) << "worker " << wp->id() << " skipped async "
                                 << "epoch " << e << ": " << s.ToString();
              continue;
            }
          }
          if (run_dr) {
            if (Status dr = wp->RunDrPhase(); !dr.ok()) {
              *slot = dr;
              return;
            }
          }
        }
      });
    }
    pool_->Wait();
    for (const Status& s : results) MAMDR_RETURN_IF_ERROR(s);
    epochs_run_ = config_.train.epochs;
    if (!config_.checkpoint_dir.empty()) {
      MAMDR_RETURN_IF_ERROR(SaveCheckpoint(epochs_run_));
    }
    return Status::OK();
  }

  for (int64_t e = start_epoch; e < config_.train.epochs; ++e) {
    MAMDR_RETURN_IF_ERROR(TrainEpoch());
  }
  return Status::OK();
}

Status DistributedMamdr::SaveCheckpoint(int64_t completed_epochs) {
  MAMDR_TRACE_SPAN("checkpoint_save");
  MAMDR_CHECK(!config_.checkpoint_dir.empty());
  recovery_counters().checkpoint_saves->Add();
  std::vector<std::pair<std::string, Tensor>> named;
  named.emplace_back("epoch",
                     Tensor({1}, static_cast<float>(completed_epochs)));
  MAMDR_ASSIGN_OR_RETURN(const auto snapshot, admin_client_->Snapshot());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    named.emplace_back("param/" + std::to_string(i), snapshot[i]);
  }
  return checkpoint::SaveTensors(named, CheckpointPath());
}

Result<int64_t> DistributedMamdr::RestoreFromCheckpoint() {
  MAMDR_ASSIGN_OR_RETURN(auto named,
                         checkpoint::LoadTensors(CheckpointPath()));
  std::unordered_map<std::string, const Tensor*> by_name;
  for (const auto& [name, tensor] : named) by_name[name] = &tensor;

  auto epoch_it = by_name.find("epoch");
  if (epoch_it == by_name.end() || epoch_it->second->size() != 1) {
    return Status::InvalidArgument("checkpoint missing epoch counter");
  }
  const int64_t epoch = static_cast<int64_t>(epoch_it->second->at(0));
  if (epoch < 0) {
    return Status::InvalidArgument("checkpoint epoch counter is negative");
  }

  // Validate the whole layout before touching the PS: restore is
  // all-or-nothing. The reference replica defines the layout, so this
  // works identically against the in-process and networked backends.
  const std::vector<Tensor> layout = optim::Snapshot(reference_params_);
  std::vector<Tensor> restored;
  restored.reserve(layout.size());
  for (size_t i = 0; i < layout.size(); ++i) {
    auto it = by_name.find("param/" + std::to_string(i));
    if (it == by_name.end()) {
      return Status::InvalidArgument("checkpoint missing param/" +
                                     std::to_string(i));
    }
    if (it->second->shape() != layout[i].shape()) {
      return Status::InvalidArgument("checkpoint shape mismatch for param/" +
                                     std::to_string(i));
    }
    restored.push_back(*it->second);
  }
  MAMDR_RETURN_IF_ERROR(admin_client_->Restore(restored));
  recovery_counters().checkpoint_restores->Add();
  return epoch;
}

std::vector<double> DistributedMamdr::EvaluateTest() {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(dataset_->num_domains()));
  // Without DR: score with the PS parameters through the reference replica.
  auto snapshot = admin_client_->Snapshot();
  MAMDR_CHECK(snapshot.ok()) << snapshot.status().ToString();
  optim::Restore(reference_params_, snapshot.value());
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    data::Batch batch = data::Batcher::All(dataset_->domain(d).test);
    std::vector<float> scores;
    if (config_.run_dr) {
      Worker* owner = workers_[static_cast<size_t>(OwnerOf(d))].get();
      owner->specific_store()->InstallComposite(d);
      scores = owner->model()->Score(batch, d);
    } else {
      scores = reference_model_->Score(batch, d);
    }
    out.push_back(metrics::Auc(scores, batch.labels));
  }
  return out;
}

double DistributedMamdr::AverageTestAuc() {
  const auto aucs = EvaluateTest();
  double sum = 0.0;
  for (double a : aucs) sum += a;
  return sum / static_cast<double>(aucs.size());
}

}  // namespace ps
}  // namespace mamdr
