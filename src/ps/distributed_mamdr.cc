#include "ps/distributed_mamdr.h"

#include <algorithm>
#include <numeric>

#include "metrics/auc.h"
#include "models/registry.h"
#include "optim/param_snapshot.h"

namespace mamdr {
namespace ps {

DistributedMamdr::DistributedMamdr(const models::ModelConfig& model_config,
                                   const data::MultiDomainDataset* dataset,
                                   DistributedConfig config)
    : dataset_(dataset), config_(std::move(config)) {
  MAMDR_CHECK_GT(config_.num_workers, 0);
  // More workers than domains would idle; clamp so worker ids stay dense.
  config_.num_workers =
      std::min<int64_t>(config_.num_workers, dataset_->num_domains());
  // Reference replica defines the layout and initial PS values. All workers
  // use the same seed so every replica starts identical to the PS.
  Rng ref_rng(model_config.seed);
  auto ref = models::CreateModel(config_.model_name, model_config, &ref_rng);
  MAMDR_CHECK(ref.ok()) << ref.status().ToString();
  reference_model_ = std::move(ref).value();
  reference_params_ = reference_model_->Parameters();

  std::vector<bool> is_embedding;
  RowExtractor extractor = MakeDefaultRowExtractor(
      reference_model_.get(), model_config, &is_embedding);
  server_ = std::make_unique<ParameterServer>(
      optim::Snapshot(reference_params_), is_embedding);

  // Greedy balance: largest domain to the currently lightest worker.
  owner_.assign(static_cast<size_t>(dataset_->num_domains()), 0);
  std::vector<int64_t> load(static_cast<size_t>(config_.num_workers), 0);
  std::vector<int64_t> domains(static_cast<size_t>(dataset_->num_domains()));
  std::iota(domains.begin(), domains.end(), 0);
  std::sort(domains.begin(), domains.end(), [&](int64_t a, int64_t b) {
    return dataset_->domain(a).train.size() > dataset_->domain(b).train.size();
  });
  std::vector<std::vector<int64_t>> assignment(
      static_cast<size_t>(config_.num_workers));
  for (int64_t d : domains) {
    const size_t w = static_cast<size_t>(
        std::min_element(load.begin(), load.end()) - load.begin());
    assignment[w].push_back(d);
    owner_[static_cast<size_t>(d)] = static_cast<int64_t>(w);
    load[w] += static_cast<int64_t>(dataset_->domain(d).train.size());
  }

  for (int64_t w = 0; w < config_.num_workers; ++w) {
    Rng wrng(model_config.seed);  // identical init across replicas
    auto m = models::CreateModel(config_.model_name, model_config, &wrng);
    MAMDR_CHECK(m.ok()) << m.status().ToString();
    WorkerConfig wc;
    wc.domains = assignment[static_cast<size_t>(w)];
    wc.train = config_.train;
    wc.use_embedding_cache = config_.use_embedding_cache;
    wc.run_dr = config_.run_dr;
    RowExtractor wx = MakeDefaultRowExtractor(m.value().get(), model_config,
                                              nullptr);
    workers_.push_back(std::make_unique<Worker>(w, std::move(m).value(),
                                                server_.get(), dataset_, wc,
                                                std::move(wx)));
  }
  pool_ = std::make_unique<ThreadPool>(
      static_cast<size_t>(std::max<int64_t>(
          1, std::min<int64_t>(config_.num_workers,
                               static_cast<int64_t>(
                                   std::thread::hardware_concurrency()) +
                                   1))));
}

DistributedMamdr::~DistributedMamdr() = default;

void DistributedMamdr::TrainEpoch() {
  for (auto& w : workers_) {
    Worker* wp = w.get();
    pool_->Submit([wp] { wp->RunDnEpoch(); });
  }
  pool_->Wait();  // epoch barrier (Parallelized SGD style)
  if (config_.run_dr) {
    for (auto& w : workers_) {
      Worker* wp = w.get();
      pool_->Submit([wp] { wp->RunDrPhase(); });
    }
    pool_->Wait();
  }
}

void DistributedMamdr::Train() {
  if (config_.async_epochs) {
    // Barrier-free: each worker runs its full schedule; pulls observe
    // whatever mixture of other workers' pushes the PS holds at that
    // moment.
    const int64_t epochs = config_.train.epochs;
    const bool run_dr = config_.run_dr;
    for (auto& w : workers_) {
      Worker* wp = w.get();
      pool_->Submit([wp, epochs, run_dr] {
        for (int64_t e = 0; e < epochs; ++e) {
          wp->RunDnEpoch();
          if (run_dr) wp->RunDrPhase();
        }
      });
    }
    pool_->Wait();
    return;
  }
  for (int64_t e = 0; e < config_.train.epochs; ++e) TrainEpoch();
}

std::vector<double> DistributedMamdr::EvaluateTest() {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(dataset_->num_domains()));
  // Without DR: score with the PS parameters through the reference replica.
  optim::Restore(reference_params_, server_->SnapshotAll());
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    data::Batch batch = data::Batcher::All(dataset_->domain(d).test);
    std::vector<float> scores;
    if (config_.run_dr) {
      Worker* owner = workers_[static_cast<size_t>(OwnerOf(d))].get();
      owner->specific_store()->InstallComposite(d);
      scores = owner->model()->Score(batch, d);
    } else {
      scores = reference_model_->Score(batch, d);
    }
    out.push_back(metrics::Auc(scores, batch.labels));
  }
  return out;
}

double DistributedMamdr::AverageTestAuc() {
  const auto aucs = EvaluateTest();
  double sum = 0.0;
  for (double a : aucs) sum += a;
  return sum / static_cast<double>(aucs.size());
}

}  // namespace ps
}  // namespace mamdr
