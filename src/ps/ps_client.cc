#include "ps/ps_client.h"

#include "common/logging.h"

namespace mamdr {
namespace ps {

DirectPsClient::DirectPsClient(ParameterServer* server) : server_(server) {
  MAMDR_CHECK(server_ != nullptr);
}

Status DirectPsClient::PullDense(std::vector<Tensor>* out) {
  server_->PullDense(out);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PullRows(int64_t idx, const std::vector<int64_t>& rows,
                                Tensor* into) {
  server_->PullRows(idx, rows, into);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PullFullTable(int64_t idx, Tensor* into) {
  server_->PullFullTable(idx, into);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PushDenseDelta(const std::vector<Tensor>& delta,
                                      float beta) {
  server_->PushDenseDelta(delta, beta);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PushRowDeltas(int64_t idx,
                                     const std::vector<int64_t>& rows,
                                     const Tensor& delta, float beta) {
  server_->PushRowDeltas(idx, rows, delta, beta);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Result<std::vector<Tensor>> DirectPsClient::Snapshot() {
  return server_->SnapshotAll();
}

}  // namespace ps
}  // namespace mamdr
