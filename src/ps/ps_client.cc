#include "ps/ps_client.h"

#include "common/lockdep.h"
#include "common/logging.h"

namespace mamdr {
namespace ps {

namespace {

// Every PS op models an RPC to another process: it can block for a network
// round trip (or, decorated by the fault injector, a retry/backoff
// schedule). Issuing one while any mutex is held is the
// blocking-under-lock pattern lockdep exists to catch, so the check sits
// at the client boundary where all op shapes funnel through.
void CheckBlockingBoundary() { lockdep::AssertNoLocksHeld("ps.client.op"); }

}  // namespace

DirectPsClient::DirectPsClient(ParameterServer* server) : server_(server) {
  MAMDR_CHECK(server_ != nullptr);
}

Status DirectPsClient::PullDense(std::vector<Tensor>* out) {
  CheckBlockingBoundary();
  server_->PullDense(out);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PullRows(int64_t idx, const std::vector<int64_t>& rows,
                                Tensor* into) {
  CheckBlockingBoundary();
  server_->PullRows(idx, rows, into);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PullFullTable(int64_t idx, Tensor* into) {
  CheckBlockingBoundary();
  server_->PullFullTable(idx, into);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PushDenseDelta(const std::vector<Tensor>& delta,
                                      float beta) {
  CheckBlockingBoundary();
  server_->PushDenseDelta(delta, beta);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PushRowDeltas(int64_t idx,
                                     const std::vector<int64_t>& rows,
                                     const Tensor& delta, float beta) {
  CheckBlockingBoundary();
  server_->PushRowDeltas(idx, rows, delta, beta);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Result<std::vector<Tensor>> DirectPsClient::Snapshot() {
  CheckBlockingBoundary();
  return server_->SnapshotAll();
}

}  // namespace ps
}  // namespace mamdr
