#include "ps/ps_client.h"

#include <string>

#include "common/lockdep.h"
#include "common/logging.h"

namespace mamdr {
namespace ps {

namespace {

// Every PS op models an RPC to another process: it can block for a network
// round trip (or, decorated by the fault injector, a retry/backoff
// schedule). Issuing one while any mutex is held is the
// blocking-under-lock pattern lockdep exists to catch, so the check sits
// at the client boundary where all op shapes funnel through.
void CheckBlockingBoundary() { lockdep::AssertNoLocksHeld("ps.client.op"); }

}  // namespace

DirectPsClient::DirectPsClient(ParameterServer* server) : server_(server) {
  MAMDR_CHECK(server_ != nullptr);
  // One-time layout capture; server shapes are immutable after
  // construction so this never goes stale.
  std::vector<Tensor> snapshot = server_->SnapshotAll();
  shapes_.reserve(snapshot.size());
  table_rows_.reserve(snapshot.size());
  for (const Tensor& t : snapshot) {
    shapes_.push_back(t.shape());
    const bool table = t.shape().size() == 2;
    table_rows_.push_back(table ? t.shape()[0] : 0);
  }
}

Status DirectPsClient::CheckIndex(int64_t idx, bool want_embedding) const {
  if (idx < 0 || idx >= static_cast<int64_t>(shapes_.size())) {
    return Status::InvalidArgument("ps client: param index " +
                                   std::to_string(idx) + " out of range");
  }
  if (want_embedding && !server_->is_embedding(idx)) {
    return Status::InvalidArgument("ps client: param " + std::to_string(idx) +
                                   " is not an embedding table");
  }
  return Status::OK();
}

Status DirectPsClient::CheckRows(int64_t idx,
                                 const std::vector<int64_t>& rows) const {
  const int64_t n = table_rows_[static_cast<size_t>(idx)];
  for (int64_t r : rows) {
    if (r < 0 || r >= n) {
      return Status::InvalidArgument(
          "ps client: row " + std::to_string(r) + " outside table " +
          std::to_string(idx) + " (" + std::to_string(n) + " rows)");
    }
  }
  return Status::OK();
}

Status DirectPsClient::CheckTableShape(int64_t idx, const Tensor& t,
                                       const char* what) const {
  if (t.shape() != shapes_[static_cast<size_t>(idx)]) {
    return Status::InvalidArgument(
        std::string("ps client: ") + what + " shape " +
        ShapeToString(t.shape()) + " != param " + std::to_string(idx) +
        " shape " + ShapeToString(shapes_[static_cast<size_t>(idx)]));
  }
  return Status::OK();
}

Status DirectPsClient::PullDense(std::vector<Tensor>* out) {
  CheckBlockingBoundary();
  if (out->size() != shapes_.size()) {
    return Status::InvalidArgument(
        "ps client: pull destination has " + std::to_string(out->size()) +
        " entries, layout has " + std::to_string(shapes_.size()));
  }
  for (size_t i = 0; i < out->size(); ++i) {
    // The server copies element-for-element into every non-embedding slot.
    if (server_->is_embedding(static_cast<int64_t>(i))) continue;
    MAMDR_RETURN_IF_ERROR(CheckTableShape(static_cast<int64_t>(i), (*out)[i],
                                          "pull destination"));
  }
  server_->PullDense(out);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PullRows(int64_t idx, const std::vector<int64_t>& rows,
                                Tensor* into) {
  CheckBlockingBoundary();
  MAMDR_RETURN_IF_ERROR(CheckIndex(idx, /*want_embedding=*/true));
  MAMDR_RETURN_IF_ERROR(CheckRows(idx, rows));
  MAMDR_RETURN_IF_ERROR(CheckTableShape(idx, *into, "pull destination"));
  server_->PullRows(idx, rows, into);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PullFullTable(int64_t idx, Tensor* into) {
  CheckBlockingBoundary();
  MAMDR_RETURN_IF_ERROR(CheckIndex(idx, /*want_embedding=*/true));
  MAMDR_RETURN_IF_ERROR(CheckTableShape(idx, *into, "pull destination"));
  server_->PullFullTable(idx, into);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PushDenseDelta(const std::vector<Tensor>& delta,
                                      float beta) {
  CheckBlockingBoundary();
  if (delta.size() != shapes_.size()) {
    return Status::InvalidArgument(
        "ps client: dense delta has " + std::to_string(delta.size()) +
        " entries, layout has " + std::to_string(shapes_.size()));
  }
  for (size_t i = 0; i < delta.size(); ++i) {
    // Embedding and empty entries are skipped server-side; anything else
    // must match the layout shape.
    if (server_->is_embedding(static_cast<int64_t>(i))) continue;
    if (delta[i].empty()) continue;
    MAMDR_RETURN_IF_ERROR(
        CheckTableShape(static_cast<int64_t>(i), delta[i], "dense delta"));
  }
  server_->PushDenseDelta(delta, beta);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Status DirectPsClient::PushRowDeltas(int64_t idx,
                                     const std::vector<int64_t>& rows,
                                     const Tensor& delta, float beta) {
  CheckBlockingBoundary();
  MAMDR_RETURN_IF_ERROR(CheckIndex(idx, /*want_embedding=*/true));
  MAMDR_RETURN_IF_ERROR(CheckRows(idx, rows));
  MAMDR_RETURN_IF_ERROR(CheckTableShape(idx, delta, "push delta"));
  server_->PushRowDeltas(idx, rows, delta, beta);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

Result<std::vector<Tensor>> DirectPsClient::Snapshot() {
  CheckBlockingBoundary();
  return server_->SnapshotAll();
}

Status DirectPsClient::Restore(const std::vector<Tensor>& params) {
  CheckBlockingBoundary();
  if (params.size() != shapes_.size()) {
    return Status::InvalidArgument(
        "ps client: restore has " + std::to_string(params.size()) +
        " entries, layout has " + std::to_string(shapes_.size()));
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (params[i].shape() != shapes_[i]) {
      return Status::InvalidArgument(
          "ps client: restore entry " + std::to_string(i) + " shape " +
          ShapeToString(params[i].shape()) + " != layout shape " +
          ShapeToString(shapes_[i]));
    }
  }
  server_->RestoreAll(params);  // mamdr-lint: allow(ignored-status)
  return Status::OK();
}

}  // namespace ps
}  // namespace mamdr
