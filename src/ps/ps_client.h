// Client-side view of the parameter server.
//
// In the production deployment (§IV-E) workers reach the PS over a network
// that can time out, drop responses, or lose the worker process entirely.
// PsClient models that boundary: every ParameterServer operation is carried
// as a Status-returning call, so callers (Worker) must treat each pull/push
// as fallible and route it through a retry policy (common/retry.h).
//
// DirectPsClient is the in-process happy-path implementation; the chaos
// harness wraps it in a FaultInjector (ps/fault_injector.h) to rehearse
// transient unavailability, latency spikes, dropped pushes, and crashes.
#ifndef MAMDR_PS_PS_CLIENT_H_
#define MAMDR_PS_PS_CLIENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ps/parameter_server.h"

namespace mamdr {
namespace ps {

class PsClient {
 public:
  virtual ~PsClient() = default;

  /// Parameter-layout metadata (local, never fails).
  virtual int64_t num_params() const = 0;
  virtual bool is_embedding(int64_t idx) const = 0;

  /// Copy every dense (non-embedding) tensor into `out` (same layout).
  virtual Status PullDense(std::vector<Tensor>* out) = 0;

  /// Copy the given rows of embedding parameter `idx` into the matching
  /// rows of `into` (a full-size local table).
  virtual Status PullRows(int64_t idx, const std::vector<int64_t>& rows,
                          Tensor* into) = 0;

  /// Copy a whole embedding table.
  virtual Status PullFullTable(int64_t idx, Tensor* into) = 0;

  /// Θ_dense ← Θ_dense + beta * delta_dense (Eq. 3 on the server).
  virtual Status PushDenseDelta(const std::vector<Tensor>& delta,
                                float beta) = 0;

  /// Embedding rows: Θ[rows] += beta * delta[rows].
  virtual Status PushRowDeltas(int64_t idx, const std::vector<int64_t>& rows,
                               const Tensor& delta, float beta) = 0;

  /// Full parameter snapshot (evaluation / checkpointing).
  virtual Result<std::vector<Tensor>> Snapshot() = 0;

  /// Overwrite every parameter from a same-layout snapshot (checkpoint
  /// resume). The inverse of Snapshot().
  virtual Status Restore(const std::vector<Tensor>& params) = 0;
};

/// In-process client: forwards directly to the ParameterServer. Requests
/// are validated against the parameter layout *before* they reach the
/// server — a malformed op (index out of range, wrong table, row beyond the
/// table, shape mismatch) returns kInvalidArgument instead of tripping the
/// server's MAMDR_CHECK aborts, so a corrupted request degrades the one op
/// rather than killing the process. The fault-free baseline the chaos runs
/// are compared against.
class DirectPsClient : public PsClient {
 public:
  explicit DirectPsClient(ParameterServer* server);

  int64_t num_params() const override { return server_->num_params(); }
  bool is_embedding(int64_t idx) const override {
    return server_->is_embedding(idx);
  }
  Status PullDense(std::vector<Tensor>* out) override;
  Status PullRows(int64_t idx, const std::vector<int64_t>& rows,
                  Tensor* into) override;
  Status PullFullTable(int64_t idx, Tensor* into) override;
  Status PushDenseDelta(const std::vector<Tensor>& delta,
                        float beta) override;
  Status PushRowDeltas(int64_t idx, const std::vector<int64_t>& rows,
                       const Tensor& delta, float beta) override;
  Result<std::vector<Tensor>> Snapshot() override;
  Status Restore(const std::vector<Tensor>& params) override;

 private:
  /// `idx` must name an embedding table (with `want_embedding`) or a valid
  /// parameter; `rows`, when given, must all lie inside the table.
  Status CheckIndex(int64_t idx, bool want_embedding) const;
  Status CheckRows(int64_t idx, const std::vector<int64_t>& rows) const;
  Status CheckTableShape(int64_t idx, const Tensor& t,
                         const char* what) const;

  ParameterServer* server_;
  /// Immutable layout captured at construction (server shapes never
  /// change), so validation needs no server round trip.
  std::vector<Shape> shapes_;
  std::vector<int64_t> table_rows_;
};

}  // namespace ps
}  // namespace mamdr

#endif  // MAMDR_PS_PS_CLIENT_H_
