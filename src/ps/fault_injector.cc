#include "ps/fault_injector.h"

#include <chrono>
#include <thread>

#include "common/lockdep.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace mamdr {
namespace ps {

namespace {
// Mirrors of FaultStats in the global registry so chaos tests can assert
// that observability and fault injection agree. Injection schedules are
// pure functions of the fault plan, so these are kStable.
struct FaultCounters {
  obs::Counter* ops;
  obs::Counter* injected_unavailable;
  obs::Counter* injected_latency;
  obs::Counter* dropped_pushes;
  obs::Counter* crashes;
};
const FaultCounters& fault_counters() {
  static const FaultCounters c{
      obs::Registry::Global().counter("ps.fault.ops"),
      obs::Registry::Global().counter("ps.fault.injected_unavailable"),
      obs::Registry::Global().counter("ps.fault.injected_latency"),
      obs::Registry::Global().counter("ps.fault.dropped_pushes"),
      obs::Registry::Global().counter("ps.fault.crashes"),
  };
  return c;
}
}  // namespace

FaultInjector::FaultInjector(std::unique_ptr<PsClient> inner,
                             FaultConfig config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {
  MAMDR_CHECK(inner_ != nullptr);
}

void FaultInjector::ArmCrashAfterOps(int64_t after_ops) {
  MAMDR_CHECK_GE(after_ops, 1);
  MutexLock lock(&mu_);
  crash_countdown_ = after_ops;
}

void FaultInjector::Reset() {
  MutexLock lock(&mu_);
  crashed_ = false;
  crash_countdown_ = -1;
}

bool FaultInjector::crashed() const {
  MutexLock lock(&mu_);
  return crashed_;
}

FaultStats FaultInjector::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

FaultInjector::Decision FaultInjector::Enter(bool is_push) {
  bool sleep_now = false;
  Decision d;
  const FaultCounters& counters = fault_counters();
  {
    MutexLock lock(&mu_);
    ++stats_.ops;
    counters.ops->Add();
    if (crashed_) {
      d.crash = true;
      return d;
    }
    if (crash_countdown_ > 0 && --crash_countdown_ == 0) {
      crashed_ = true;
      ++stats_.crashes;
      counters.crashes->Add();
      d.crash = true;
      return d;
    }
    // Fixed draw order keeps the schedule a pure function of the op count.
    const bool unavailable = rng_.Bernoulli(config_.unavailable_prob);
    const bool drop = rng_.Bernoulli(config_.drop_push_prob);
    const bool latency = rng_.Bernoulli(config_.latency_prob);
    if (unavailable) {
      ++stats_.injected_unavailable;
      counters.injected_unavailable->Add();
      d.unavailable = true;
      return d;
    }
    if (is_push && drop) {
      ++stats_.dropped_pushes;
      counters.dropped_pushes->Add();
      d.drop = true;
    }
    if (latency) {
      ++stats_.injected_latency;
      counters.injected_latency->Add();
      sleep_now = true;
    }
  }
  if (sleep_now && config_.latency_us > 0) {
    // The injected latency models a slow RPC; like a real one, it must not
    // run while the caller holds a lock (the injector's own mu_ is already
    // released above — lockdep verifies nothing else is held either).
    lockdep::AssertNoLocksHeld("ps.fault_injector.latency");
    std::this_thread::sleep_for(std::chrono::microseconds(config_.latency_us));
  }
  return d;
}

namespace {

Status CrashStatus() {
  return Status::Aborted("worker crashed (injected)");
}

Status UnavailableStatus() {
  return Status::Unavailable("PS endpoint unavailable (injected)");
}

}  // namespace

Status FaultInjector::PullDense(std::vector<Tensor>* out) {
  const Decision d = Enter(/*is_push=*/false);
  if (d.crash) return CrashStatus();
  if (d.unavailable) return UnavailableStatus();
  return inner_->PullDense(out);
}

Status FaultInjector::PullRows(int64_t idx, const std::vector<int64_t>& rows,
                               Tensor* into) {
  const Decision d = Enter(/*is_push=*/false);
  if (d.crash) return CrashStatus();
  if (d.unavailable) return UnavailableStatus();
  return inner_->PullRows(idx, rows, into);
}

Status FaultInjector::PullFullTable(int64_t idx, Tensor* into) {
  const Decision d = Enter(/*is_push=*/false);
  if (d.crash) return CrashStatus();
  if (d.unavailable) return UnavailableStatus();
  return inner_->PullFullTable(idx, into);
}

Status FaultInjector::PushDenseDelta(const std::vector<Tensor>& delta,
                                     float beta) {
  const Decision d = Enter(/*is_push=*/true);
  if (d.crash) return CrashStatus();
  if (d.unavailable) return UnavailableStatus();
  if (d.drop) return Status::OK();  // acknowledged, never applied
  return inner_->PushDenseDelta(delta, beta);
}

Status FaultInjector::PushRowDeltas(int64_t idx,
                                    const std::vector<int64_t>& rows,
                                    const Tensor& delta, float beta) {
  const Decision d = Enter(/*is_push=*/true);
  if (d.crash) return CrashStatus();
  if (d.unavailable) return UnavailableStatus();
  if (d.drop) return Status::OK();  // acknowledged, never applied
  return inner_->PushRowDeltas(idx, rows, delta, beta);
}

Result<std::vector<Tensor>> FaultInjector::Snapshot() {
  const Decision d = Enter(/*is_push=*/false);
  if (d.crash) return CrashStatus();
  if (d.unavailable) return UnavailableStatus();
  return inner_->Snapshot();
}

Status FaultInjector::Restore(const std::vector<Tensor>& params) {
  // Not a push: a silently dropped restore would desync resume state, so
  // the drop draw is never honored — restore either fails loudly
  // (crash/unavailable) or applies.
  const Decision d = Enter(/*is_push=*/false);
  if (d.crash) return CrashStatus();
  if (d.unavailable) return UnavailableStatus();
  return inner_->Restore(params);
}

}  // namespace ps
}  // namespace mamdr
