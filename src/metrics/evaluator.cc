#include "metrics/evaluator.h"

#include "common/logging.h"
#include "common/parallel_for.h"
#include "metrics/auc.h"

namespace mamdr {
namespace metrics {
namespace {

const std::vector<data::Interaction>& SelectSplit(const data::DomainData& d,
                                                  Split split) {
  switch (split) {
    case Split::kTrain:
      return d.train;
    case Split::kVal:
      return d.val;
    case Split::kTest:
      return d.test;
  }
  MAMDR_CHECK(false) << "unreachable";
  return d.test;
}

}  // namespace

double EvaluateDomain(const data::MultiDomainDataset& ds, int64_t domain,
                      Split split, const ScoreFn& score) {
  const auto& interactions = SelectSplit(ds.domain(domain), split);
  data::Batch batch = data::Batcher::All(interactions);
  std::vector<float> scores = score(batch, domain);
  MAMDR_CHECK_EQ(scores.size(), batch.labels.size());
  return Auc(scores, batch.labels);
}

std::vector<double> EvaluateAllDomains(const data::MultiDomainDataset& ds,
                                       Split split, const ScoreFn& score,
                                       EvalParallel parallel) {
  std::vector<double> out(static_cast<size_t>(ds.num_domains()), 0.0);
  if (parallel == EvalParallel::kParallel) {
    double* po = out.data();
    ParallelFor(0, ds.num_domains(), 1, [&](int64_t d0, int64_t d1) {
      for (int64_t d = d0; d < d1; ++d) {
        po[d] = EvaluateDomain(ds, d, split, score);
      }
    });
  } else {
    for (int64_t d = 0; d < ds.num_domains(); ++d) {
      out[static_cast<size_t>(d)] = EvaluateDomain(ds, d, split, score);
    }
  }
  return out;
}

double AverageAuc(const data::MultiDomainDataset& ds, Split split,
                  const ScoreFn& score) {
  const auto aucs = EvaluateAllDomains(ds, split, score);
  double sum = 0.0;
  for (double a : aucs) sum += a;
  return aucs.empty() ? 0.5 : sum / static_cast<double>(aucs.size());
}

}  // namespace metrics
}  // namespace mamdr
