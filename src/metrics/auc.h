// Exact ROC-AUC.
#ifndef MAMDR_METRICS_AUC_H_
#define MAMDR_METRICS_AUC_H_

#include <vector>

namespace mamdr {
namespace metrics {

/// Exact AUC from scores and binary labels, computed with the rank-sum
/// statistic (ties get fractional rank). Returns 0.5 when one class is
/// absent (undefined case — matches common evaluation practice).
double Auc(const std::vector<float>& scores, const std::vector<float>& labels);

}  // namespace metrics
}  // namespace mamdr

#endif  // MAMDR_METRICS_AUC_H_
