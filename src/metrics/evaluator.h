// Model-agnostic per-domain evaluation.
#ifndef MAMDR_METRICS_EVALUATOR_H_
#define MAMDR_METRICS_EVALUATOR_H_

#include <functional>
#include <vector>

#include "data/batch.h"
#include "data/dataset.h"

namespace mamdr {
namespace metrics {

/// Scoring callback: CTR scores for a batch in the given domain. Keeping the
/// evaluator callback-based keeps metrics independent of model structure —
/// the same theme as the paper's framework.
using ScoreFn =
    std::function<std::vector<float>(const data::Batch&, int64_t domain)>;

/// Which split to evaluate.
enum class Split { kTrain, kVal, kTest };

/// AUC of one domain's split.
double EvaluateDomain(const data::MultiDomainDataset& ds, int64_t domain,
                      Split split, const ScoreFn& score);

/// Whether EvaluateAllDomains may fan domains out over the kernel pool.
/// Only pass kParallel when `score` is safe to call concurrently from
/// multiple threads (a pure forward pass is; scorers that install
/// per-domain parameters into a shared model, like MAMDR composites, are
/// not). Each domain writes a disjoint output slot and the per-domain
/// computation is unchanged, so the result is identical either way.
enum class EvalParallel { kSerial, kParallel };

/// AUC of every domain's split.
std::vector<double> EvaluateAllDomains(
    const data::MultiDomainDataset& ds, Split split, const ScoreFn& score,
    EvalParallel parallel = EvalParallel::kSerial);

/// Mean of EvaluateAllDomains.
double AverageAuc(const data::MultiDomainDataset& ds, Split split,
                  const ScoreFn& score);

}  // namespace metrics
}  // namespace mamdr

#endif  // MAMDR_METRICS_EVALUATOR_H_
