#include "metrics/conflict_probe.h"

#include <cmath>

#include "common/logging.h"
#include "tensor/tensor_ops.h"

namespace mamdr {
namespace metrics {

ConflictReport MeasureConflict(const std::vector<Tensor>& domain_grads) {
  ConflictReport report;
  const size_t n = domain_grads.size();
  if (n < 2) return report;
  std::vector<double> norms(n);
  for (size_t i = 0; i < n; ++i) {
    norms[i] = std::sqrt(static_cast<double>(ops::SquaredNorm(domain_grads[i])));
  }
  double sum_ip = 0.0, sum_cos = 0.0;
  int64_t negatives = 0, pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double ip =
          static_cast<double>(ops::Dot(domain_grads[i], domain_grads[j]));
      sum_ip += ip;
      const double denom = norms[i] * norms[j];
      sum_cos += denom > 1e-12 ? ip / denom : 0.0;
      if (ip < 0.0) ++negatives;
      ++pairs;
    }
  }
  report.num_pairs = pairs;
  report.mean_inner_product = sum_ip / static_cast<double>(pairs);
  report.mean_cosine = sum_cos / static_cast<double>(pairs);
  report.conflict_rate =
      static_cast<double>(negatives) / static_cast<double>(pairs);
  return report;
}

}  // namespace metrics
}  // namespace mamdr
