// GAUC: per-user (group) AUC, weighted by the user's impression count —
// the industrial CTR metric that removes cross-user score-scale effects.
#ifndef MAMDR_METRICS_GAUC_H_
#define MAMDR_METRICS_GAUC_H_

#include <cstdint>
#include <vector>

namespace mamdr {
namespace metrics {

/// GAUC = sum_u w_u * AUC_u / sum_u w_u, where AUC_u is computed over user
/// u's samples and w_u is the number of those samples. Users whose samples
/// are single-class are skipped (their AUC is undefined). Returns 0.5 when
/// no user is scoreable.
double GAuc(const std::vector<int64_t>& users,
            const std::vector<float>& scores,
            const std::vector<float>& labels);

}  // namespace metrics
}  // namespace mamdr

#endif  // MAMDR_METRICS_GAUC_H_
