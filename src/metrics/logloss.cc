#include "metrics/logloss.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mamdr {
namespace metrics {

double LogLoss(const std::vector<float>& probs,
               const std::vector<float>& labels, double eps) {
  MAMDR_CHECK_EQ(probs.size(), labels.size());
  if (probs.empty()) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    const double p =
        std::clamp(static_cast<double>(probs[i]), eps, 1.0 - eps);
    acc += labels[i] > 0.5f ? -std::log(p) : -std::log(1.0 - p);
  }
  return acc / static_cast<double>(probs.size());
}

}  // namespace metrics
}  // namespace mamdr
