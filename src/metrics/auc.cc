#include "metrics/auc.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace mamdr {
namespace metrics {

double Auc(const std::vector<float>& scores,
           const std::vector<float>& labels) {
  MAMDR_CHECK_EQ(scores.size(), labels.size());
  const size_t n = scores.size();
  if (n == 0) return 0.5;
  std::vector<size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return scores[a] < scores[b]; });

  // Fractional ranks with tie handling.
  double rank_sum_pos = 0.0;
  size_t num_pos = 0;
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && scores[idx[j + 1]] == scores[idx[i]]) ++j;
    const double avg_rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) {
      if (labels[idx[k]] > 0.5f) {
        rank_sum_pos += avg_rank;
        ++num_pos;
      }
    }
    i = j + 1;
  }
  const size_t num_neg = n - num_pos;
  if (num_pos == 0 || num_neg == 0) return 0.5;
  const double u = rank_sum_pos - static_cast<double>(num_pos) *
                                      (static_cast<double>(num_pos) + 1.0) /
                                      2.0;
  return u / (static_cast<double>(num_pos) * static_cast<double>(num_neg));
}

}  // namespace metrics
}  // namespace mamdr
