#include "metrics/gauc.h"

#include <map>

#include "common/logging.h"
#include "metrics/auc.h"

namespace mamdr {
namespace metrics {

double GAuc(const std::vector<int64_t>& users,
            const std::vector<float>& scores,
            const std::vector<float>& labels) {
  MAMDR_CHECK_EQ(users.size(), scores.size());
  MAMDR_CHECK_EQ(users.size(), labels.size());
  struct Group {
    std::vector<float> scores;
    std::vector<float> labels;
    bool has_pos = false;
    bool has_neg = false;
  };
  std::map<int64_t, Group> groups;
  for (size_t i = 0; i < users.size(); ++i) {
    Group& g = groups[users[i]];
    g.scores.push_back(scores[i]);
    g.labels.push_back(labels[i]);
    (labels[i] > 0.5f ? g.has_pos : g.has_neg) = true;
  }
  double weighted = 0.0, total_weight = 0.0;
  for (const auto& [user, g] : groups) {
    (void)user;
    if (!g.has_pos || !g.has_neg) continue;  // AUC undefined
    const double w = static_cast<double>(g.scores.size());
    weighted += w * Auc(g.scores, g.labels);
    total_weight += w;
  }
  return total_weight > 0.0 ? weighted / total_weight : 0.5;
}

}  // namespace metrics
}  // namespace mamdr
