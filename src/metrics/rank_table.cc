#include "metrics/rank_table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace mamdr {
namespace metrics {

std::vector<RankRow> ComputeRankTable(
    const std::vector<MethodResult>& results) {
  MAMDR_CHECK(!results.empty());
  const size_t num_domains = results[0].domain_auc.size();
  for (const auto& r : results) {
    MAMDR_CHECK_EQ(r.domain_auc.size(), num_domains);
  }
  std::vector<RankRow> rows(results.size());
  for (size_t m = 0; m < results.size(); ++m) {
    rows[m].method = results[m].method;
    double sum = 0.0;
    for (double a : results[m].domain_auc) sum += a;
    rows[m].avg_auc = sum / static_cast<double>(num_domains);
  }
  // Per-domain ranks (1 = highest AUC); ties share the mean rank.
  for (size_t d = 0; d < num_domains; ++d) {
    std::vector<size_t> order(results.size());
    for (size_t m = 0; m < order.size(); ++m) order[m] = m;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return results[a].domain_auc[d] > results[b].domain_auc[d];
    });
    size_t i = 0;
    while (i < order.size()) {
      size_t j = i;
      while (j + 1 < order.size() &&
             results[order[j + 1]].domain_auc[d] ==
                 results[order[i]].domain_auc[d]) {
        ++j;
      }
      const double avg_rank =
          (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
      for (size_t k = i; k <= j; ++k) {
        rows[order[k]].avg_rank += avg_rank / static_cast<double>(num_domains);
      }
      i = j + 1;
    }
  }
  return rows;
}

std::string FormatRankTable(const std::vector<RankRow>& rows) {
  std::vector<std::vector<std::string>> cells;
  for (const auto& r : rows) {
    cells.push_back(
        {r.method, FormatFloat(r.avg_auc, 4), FormatFloat(r.avg_rank, 1)});
  }
  return RenderTable({"Method", "AUC", "RANK"}, cells);
}

}  // namespace metrics
}  // namespace mamdr
