// Average AUC / average RANK aggregation (the two metrics of Table V).
#ifndef MAMDR_METRICS_RANK_TABLE_H_
#define MAMDR_METRICS_RANK_TABLE_H_

#include <string>
#include <vector>

namespace mamdr {
namespace metrics {

/// Results of one method: per-domain AUCs.
struct MethodResult {
  std::string method;
  std::vector<double> domain_auc;
};

/// Aggregated row: average AUC across domains and average rank among the
/// compared methods (1 = best per domain, averaged over domains).
struct RankRow {
  std::string method;
  double avg_auc = 0.0;
  double avg_rank = 0.0;
};

/// Compute Table-V style aggregation. All methods must cover the same
/// domains. Higher AUC ranks better; ties share the mean rank.
std::vector<RankRow> ComputeRankTable(const std::vector<MethodResult>& results);

/// Render as an ASCII table.
std::string FormatRankTable(const std::vector<RankRow>& rows);

}  // namespace metrics
}  // namespace mamdr

#endif  // MAMDR_METRICS_RANK_TABLE_H_
