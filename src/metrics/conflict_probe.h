// Gradient-conflict diagnostics (§III-B, Fig. 3).
//
// Conflict between domains i and j is a negative inner product <g_i, g_j> of
// their loss gradients at the same parameter point. The probe quantifies how
// much a training framework mitigates conflict: DN should raise the mean
// pairwise cosine relative to Alternate training (§IV-C).
#ifndef MAMDR_METRICS_CONFLICT_PROBE_H_
#define MAMDR_METRICS_CONFLICT_PROBE_H_

#include <vector>

#include "tensor/tensor.h"

namespace mamdr {
namespace metrics {

struct ConflictReport {
  double mean_inner_product = 0.0;
  double mean_cosine = 0.0;
  /// Fraction of domain pairs with negative inner product.
  double conflict_rate = 0.0;
  int64_t num_pairs = 0;
};

/// Pairwise statistics over per-domain flattened gradients.
ConflictReport MeasureConflict(const std::vector<Tensor>& domain_grads);

}  // namespace metrics
}  // namespace mamdr

#endif  // MAMDR_METRICS_CONFLICT_PROBE_H_
