// Binary log loss (cross entropy on probabilities) — the second standard
// CTR metric alongside AUC.
#ifndef MAMDR_METRICS_LOGLOSS_H_
#define MAMDR_METRICS_LOGLOSS_H_

#include <vector>

namespace mamdr {
namespace metrics {

/// Mean -[y log p + (1-y) log(1-p)], probabilities clamped to
/// [eps, 1-eps] for stability. Returns 0 on empty input.
double LogLoss(const std::vector<float>& probs,
               const std::vector<float>& labels, double eps = 1e-7);

}  // namespace metrics
}  // namespace mamdr

#endif  // MAMDR_METRICS_LOGLOSS_H_
