// Patience-based early stopping on a validation metric.
//
// The paper trains with early stopping on validation AUC (§V-C practice);
// this utility packages that loop for library users and the CLI:
//
//   core::EarlyStopper stopper(/*patience=*/3);
//   while (!stopper.ShouldStop()) {
//     fw->TrainEpoch();
//     stopper.Observe(AvgVal(fw), fw->model());   // snapshots best params
//   }
//   stopper.RestoreBest(fw->model());
#ifndef MAMDR_CORE_EARLY_STOPPER_H_
#define MAMDR_CORE_EARLY_STOPPER_H_

#include <vector>

#include "nn/module.h"

namespace mamdr {
namespace core {

class EarlyStopper {
 public:
  /// Stop after `patience` consecutive non-improving observations.
  /// `min_delta` is the smallest improvement that counts.
  explicit EarlyStopper(int64_t patience, double min_delta = 0.0);

  /// Record a validation metric (higher is better). If it improves on the
  /// best seen, snapshots the module's parameters. Returns true if this
  /// observation improved.
  bool Observe(double metric, const nn::Module& module);

  /// True once `patience` observations in a row failed to improve.
  bool ShouldStop() const { return bad_streak_ >= patience_; }

  double best_metric() const { return best_metric_; }
  int64_t best_epoch() const { return best_epoch_; }
  int64_t epochs_observed() const { return observed_; }

  /// Copy the best snapshot back into the module. No-op if nothing was
  /// ever observed.
  void RestoreBest(nn::Module* module) const;

 private:
  int64_t patience_;
  double min_delta_;
  double best_metric_ = -1e300;
  int64_t best_epoch_ = -1;
  int64_t observed_ = 0;
  int64_t bad_streak_ = 0;
  std::vector<Tensor> best_params_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_EARLY_STOPPER_H_
