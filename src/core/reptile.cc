#include "core/reptile.h"

#include "optim/param_snapshot.h"

namespace mamdr {
namespace core {

Reptile::Reptile(models::CtrModel* model,
                 const data::MultiDomainDataset* dataset, TrainConfig config)
    : Framework(model, dataset, std::move(config)) {}

void Reptile::DoTrainEpoch() {
  std::vector<int64_t> order(static_cast<size_t>(dataset_->num_domains()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  rng_.Shuffle(&order);
  for (int64_t d : order) {
    const std::vector<Tensor> theta = optim::Snapshot(params_);
    auto inner = MakeInnerOptimizer(config_.inner_lr);
    TrainDomainPass(d, inner.get());
    // Θ <- Θ + β(Θ̃ − Θ), per task.
    optim::MetaInterpolate(params_, theta, config_.outer_lr);
  }
}

}  // namespace core
}  // namespace mamdr
