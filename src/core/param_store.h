// Shared + domain-specific parameter store (Eq. 4: Θ = θS + θi).
//
// The store realizes the composition *outside* the model: the model exposes
// one parameter vector, and the store installs either θS or θS + θi into it
// before forward/backward. This is what keeps MAMDR model agnostic — any
// structure gains per-domain specific parameters without code changes, and
// the platform can onboard a new domain by just growing the store.
#ifndef MAMDR_CORE_PARAM_STORE_H_
#define MAMDR_CORE_PARAM_STORE_H_

#include <vector>

#include "autograd/variable.h"

namespace mamdr {
namespace core {

class SharedSpecificStore {
 public:
  /// θS is initialized from the params' current values; every θi starts at
  /// zero so the initial composite equals θS.
  SharedSpecificStore(std::vector<autograd::Var> params, int64_t num_domains);

  int64_t num_domains() const {
    return static_cast<int64_t>(specific_.size());
  }

  /// params <- θS.
  void InstallShared();

  /// params <- θS + θ_domain.
  void InstallComposite(int64_t domain);

  /// θS <- current param values (after a phase that trained θS in place).
  void UpdateSharedFromParams();

  /// θ_domain <- current param values - θS (after a phase that trained the
  /// composite in place with θS frozen).
  void UpdateSpecificFromComposite(int64_t domain);

  /// Onboard a new domain: append zero-initialized specific parameters and
  /// return its index (mirrors the MDR platform of Fig. 2).
  int64_t AddDomain();

  const std::vector<Tensor>& shared() const { return shared_; }
  const std::vector<Tensor>& specific(int64_t domain) const;

  /// Mutable access for checkpoint restore. Values must keep their shapes.
  std::vector<Tensor>* mutable_shared() { return &shared_; }
  std::vector<Tensor>* mutable_specific(int64_t domain);

  /// Scalars per domain of specific parameters (storage accounting).
  int64_t SpecificParameterCount() const;

 private:
  std::vector<autograd::Var> params_;
  std::vector<Tensor> shared_;
  std::vector<std::vector<Tensor>> specific_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_PARAM_STORE_H_
