#include "core/grid_search.h"

#include <algorithm>

#include "core/framework_registry.h"

namespace mamdr {
namespace core {
namespace {

template <typename T>
std::vector<T> OrDefault(const std::vector<T>& candidates, T base) {
  return candidates.empty() ? std::vector<T>{base} : candidates;
}

double Mean(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

}  // namespace

std::vector<GridCell> GridSearch(const ModelFactory& factory,
                                 const std::string& framework_name,
                                 const data::MultiDomainDataset& dataset,
                                 const TrainConfig& base,
                                 const GridSpec& grid) {
  std::vector<GridCell> cells;
  for (float alpha : OrDefault(grid.inner_lr, base.inner_lr)) {
    for (float beta : OrDefault(grid.outer_lr, base.outer_lr)) {
      for (float gamma : OrDefault(grid.dr_lr, base.dr_lr)) {
        for (int64_t k : OrDefault(grid.dr_sample_k, base.dr_sample_k)) {
          GridCell cell;
          cell.config = base;
          cell.config.inner_lr = alpha;
          cell.config.outer_lr = beta;
          cell.config.dr_lr = gamma;
          cell.config.dr_sample_k = k;

          auto model = factory();
          MAMDR_CHECK(model != nullptr);
          auto fw = CreateFramework(framework_name, model.get(), &dataset,
                                    cell.config);
          MAMDR_CHECK(fw.ok()) << fw.status().ToString();
          double best_val = -1.0, test_at_best = 0.0;
          for (int64_t e = 0; e < cell.config.epochs; ++e) {
            fw.value()->TrainEpoch();
            const double val =
                Mean(fw.value()->Evaluate(metrics::Split::kVal));
            if (val > best_val) {
              best_val = val;
              test_at_best = Mean(fw.value()->EvaluateTest());
            }
          }
          cell.val_auc = best_val;
          cell.test_auc = test_at_best;
          cells.push_back(std::move(cell));
        }
      }
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const GridCell& a, const GridCell& b) {
              return a.val_auc > b.val_auc;
            });
  return cells;
}

}  // namespace core
}  // namespace mamdr
