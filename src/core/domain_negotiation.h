// Domain Negotiation (Algorithm 1) — the paper's first contribution.
//
// Per outer epoch:
//   Θ̃₁ ← Θ; shuffle domains; for each domain i (sequentially):
//     Θ̃ᵢ₊₁ ← Θ̃ᵢ − α∇L(Θ̃ᵢ, Tⁱ)          (inner loop, Eq. 2)
//   Θ ← Θ + β(Θ̃ₙ₊₁ − Θ)                  (outer update, Eq. 3)
//
// The Taylor analysis of §IV-C shows the outer update direction contains
// −α Σᵢ Σ_{j<i} H̄ᵢ ḡⱼ, whose expectation under the per-epoch shuffle is the
// ascent direction of Σ ⟨ḡᵢ, ḡⱼ⟩ — DN maximizes cross-domain gradient inner
// products (mitigates conflict) in O(n) per epoch. β=1 degrades DN to
// Alternate Training and loses this property.
#ifndef MAMDR_CORE_DOMAIN_NEGOTIATION_H_
#define MAMDR_CORE_DOMAIN_NEGOTIATION_H_

#include <memory>

#include "core/framework.h"

namespace mamdr {
namespace core {

class DomainNegotiation : public Framework {
 public:
  DomainNegotiation(models::CtrModel* model,
                    const data::MultiDomainDataset* dataset,
                    TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "DN"; }

 private:
  std::unique_ptr<optim::Optimizer> inner_opt_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_DOMAIN_NEGOTIATION_H_
