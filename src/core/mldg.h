// MLDG: meta-learning for domain generalization (Li et al., AAAI'18),
// first-order variant.
//
// Per step: split domains into meta-train / meta-test, take a virtual step on
// meta-train, and combine the meta-train gradient with the meta-test gradient
// evaluated at the stepped parameters.
#ifndef MAMDR_CORE_MLDG_H_
#define MAMDR_CORE_MLDG_H_

#include <memory>

#include "core/framework.h"

namespace mamdr {
namespace core {

class Mldg : public Framework {
 public:
  Mldg(models::CtrModel* model, const data::MultiDomainDataset* dataset,
       TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "MLDG"; }

 private:
  std::unique_ptr<optim::Optimizer> opt_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_MLDG_H_
