// PCGrad: gradient surgery for multi-task learning (Yu et al., NeurIPS'20).
//
// Per step, one batch per domain produces per-domain gradients; each gradient
// is projected off the normal plane of every conflicting other (random
// order), the projected gradients are summed and applied. O(n^2) in the
// number of domains — the scalability limitation §III-C calls out.
#ifndef MAMDR_CORE_PCGRAD_H_
#define MAMDR_CORE_PCGRAD_H_

#include <memory>

#include "core/framework.h"

namespace mamdr {
namespace core {

class PcGrad : public Framework {
 public:
  PcGrad(models::CtrModel* model, const data::MultiDomainDataset* dataset,
         TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "PCGrad"; }

 private:
  std::unique_ptr<optim::Optimizer> opt_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_PCGRAD_H_
