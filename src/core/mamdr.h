// MAMDR (Algorithm 3): Domain Negotiation for the shared parameters +
// Domain Regularization for every domain's specific parameters, unified over
// one shared/specific store. Model agnostic: composes with any CtrModel.
#ifndef MAMDR_CORE_MAMDR_H_
#define MAMDR_CORE_MAMDR_H_

#include <memory>

#include "core/domain_negotiation.h"
#include "core/domain_regularization.h"
#include "core/param_store.h"

namespace mamdr {
namespace core {

class Mamdr : public Framework {
 public:
  Mamdr(models::CtrModel* model, const data::MultiDomainDataset* dataset,
        TrainConfig config);

  /// Algorithm 3 body: line 2 (DN on θS), lines 3-5 (DR on every θᵢ).
  void DoTrainEpoch() override;
  std::string name() const override { return "MAMDR"; }
  metrics::ScoreFn Scorer() override;
  bool ScorerIsThreadSafe() const override { return false; }

  SharedSpecificStore* store() { return store_.get(); }

  /// Algorithm 3 consumes (k+1)n domain passes per epoch: n from DN plus
  /// 2kn capped passes from DR.
  int64_t domain_pass_count() const override {
    return dn_->domain_pass_count() + dr_->domain_pass_count();
  }
  int64_t batch_step_count() const override {
    return dn_->batch_step_count() + dr_->batch_step_count();
  }

  /// Onboard a new domain at serving time (the platform path of Fig. 2):
  /// grows the store with zero-initialized specific parameters. The caller
  /// must have added the domain's data to the dataset beforehand.
  int64_t AddDomain();

 private:
  std::unique_ptr<SharedSpecificStore> store_;
  std::unique_ptr<DomainNegotiation> dn_;
  std::unique_ptr<DomainRegularization> dr_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_MAMDR_H_
