// Reptile (Nichol et al., 2018) treating each domain as a task.
//
// Per task: snapshot Θ, run a few inner steps on that domain, interpolate
// Θ <- Θ + β(Θ̃ − Θ), restore and move to the next task. The interpolation
// happens after EVERY single domain, so the implicit inner-product term is
// maximized *within* a domain only — the key contrast with DN (§IV-C,
// Fig. 5d vs 5a).
#ifndef MAMDR_CORE_REPTILE_H_
#define MAMDR_CORE_REPTILE_H_

#include "core/framework.h"

namespace mamdr {
namespace core {

class Reptile : public Framework {
 public:
  Reptile(models::CtrModel* model, const data::MultiDomainDataset* dataset,
          TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "Reptile"; }
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_REPTILE_H_
