// Hyper-parameter grid search over TrainConfig fields.
//
// Runs every combination of the given alpha/beta/gamma/k candidates,
// training a freshly-seeded model per cell and scoring it by average
// validation AUC; returns the cells sorted best-first. This is the tuning
// loop behind Figs. 8 and 9, packaged for library users.
#ifndef MAMDR_CORE_GRID_SEARCH_H_
#define MAMDR_CORE_GRID_SEARCH_H_

#include <functional>
#include <string>
#include <vector>

#include "core/framework.h"

namespace mamdr {
namespace core {

struct GridSpec {
  std::vector<float> inner_lr;    // empty = keep base value
  std::vector<float> outer_lr;
  std::vector<float> dr_lr;
  std::vector<int64_t> dr_sample_k;
};

struct GridCell {
  TrainConfig config;
  double val_auc = 0.0;
  double test_auc = 0.0;
};

/// Factory producing a fresh model for each cell (must re-seed itself).
using ModelFactory = std::function<std::unique_ptr<models::CtrModel>()>;

/// Exhaustive sweep; result sorted by val_auc descending.
std::vector<GridCell> GridSearch(const ModelFactory& factory,
                                 const std::string& framework_name,
                                 const data::MultiDomainDataset& dataset,
                                 const TrainConfig& base, const GridSpec& grid);

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_GRID_SEARCH_H_
