// First-order MAML (Finn et al., ICML'17) treating each domain as a task.
//
// Each domain's training data is split into support and query halves (which
// is why MAML under-uses the training set — §V-G). Per task: adapt on the
// support set, take the query-set gradient at the adapted point as the
// meta-gradient (first-order approximation), and apply it at the initial
// parameters.
#ifndef MAMDR_CORE_MAML_H_
#define MAMDR_CORE_MAML_H_

#include <memory>
#include <vector>

#include "core/framework.h"

namespace mamdr {
namespace core {

class Maml : public Framework {
 public:
  Maml(models::CtrModel* model, const data::MultiDomainDataset* dataset,
       TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "MAML"; }

 private:
  std::vector<std::vector<data::Interaction>> support_;
  std::vector<std::vector<data::Interaction>> query_;
  std::unique_ptr<optim::Optimizer> meta_opt_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_MAML_H_
