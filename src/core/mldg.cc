#include "core/mldg.h"

#include "data/batch.h"
#include "optim/param_snapshot.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace mamdr {
namespace core {

Mldg::Mldg(models::CtrModel* model, const data::MultiDomainDataset* dataset,
           TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  opt_ = MakeInnerOptimizer(config_.inner_lr);
}

void Mldg::DoTrainEpoch() {
  const int64_t n = dataset_->num_domains();
  nn::Context ctx{/*training=*/true, &rng_};
  // Number of meta-steps per epoch scales with total batches.
  int64_t steps = 0;
  for (int64_t d = 0; d < n; ++d) {
    steps += (static_cast<int64_t>(dataset_->domain(d).train.size()) +
              config_.batch_size - 1) /
             config_.batch_size;
  }
  steps = std::max<int64_t>(1, steps / std::max<int64_t>(1, n));
  for (int64_t step = 0; step < steps; ++step) {
    // Random split: one held-out meta-test domain, rest meta-train.
    std::vector<int64_t> order(static_cast<size_t>(n));
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int64_t>(i);
    }
    rng_.Shuffle(&order);
    const int64_t meta_test = order.back();
    order.pop_back();

    const std::vector<Tensor> theta = optim::Snapshot(params_);
    // Meta-train gradient: accumulate one batch from each meta-train domain.
    for (auto& p : params_) p.ZeroGrad();
    for (int64_t d : order) {
      data::Batch b = data::Batcher::Sample(dataset_->domain(d).train,
                                            config_.batch_size, &rng_);
      model_->Loss(b, d, ctx).Backward();  // grads accumulate
    }
    std::vector<Tensor> g_train = optim::GradSnapshot(params_);
    const float scale =
        order.empty() ? 1.0f : 1.0f / static_cast<float>(order.size());
    for (auto& g : g_train) ops::ScaleInPlace(&g, scale);

    // Virtual step Θ' = Θ − α * g_train, then meta-test gradient at Θ'.
    for (size_t i = 0; i < params_.size(); ++i) {
      ops::AxpyInPlace(&params_[i].mutable_value(), g_train[i],
                       -config_.inner_lr);
    }
    data::Batch bt = data::Batcher::Sample(dataset_->domain(meta_test).train,
                                           config_.batch_size, &rng_);
    for (auto& p : params_) p.ZeroGrad();
    model_->Loss(bt, meta_test, ctx).Backward();
    std::vector<Tensor> g_test = optim::GradSnapshot(params_);

    // Combined first-order update at the original parameters.
    optim::Restore(params_, theta);
    for (size_t i = 0; i < g_train.size(); ++i) {
      ops::AxpyInPlace(&g_train[i], g_test[i], 1.0f);
    }
    optim::SetGrads(params_, g_train);
    opt_->Step();
    ++batch_step_count_;
  }
}

}  // namespace core
}  // namespace mamdr
