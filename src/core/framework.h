// Learning-framework interface: the model-agnostic training layer.
//
// A Framework owns *how* a model's parameters are optimized across domains,
// never *what* the model computes. Every algorithm compared in the paper
// (Table X) implements this interface: Alternate, Alternate+Finetune,
// WeightedLoss, PCGrad, MAML, Reptile, MLDG, DN, DR, and MAMDR.
#ifndef MAMDR_CORE_FRAMEWORK_H_
#define MAMDR_CORE_FRAMEWORK_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "metrics/conflict_probe.h"
#include "metrics/evaluator.h"
#include "models/ctr_model.h"
#include "optim/optimizer.h"

namespace mamdr {
namespace core {

/// Hyper-parameters of the training frameworks (§V-C).
struct TrainConfig {
  int64_t epochs = 8;
  int64_t batch_size = 256;
  /// Inner-loop learning rate alpha (Eq. 2).
  float inner_lr = 1e-3f;
  /// Outer-loop learning rate beta (Eq. 3). beta=1 degenerates DN to
  /// Alternate Training (§IV-C). The paper finds beta in [0.1, 0.5] best;
  /// 0.5 converges fastest at fixed epoch budgets (Fig. 9).
  float outer_lr = 0.5f;
  /// DR learning rate gamma (Eq. 8).
  float dr_lr = 0.5f;
  /// DR helper-domain sample count k (Algorithm 2).
  int64_t dr_sample_k = 5;
  /// Cap on mini-batches per domain pass inside DR (bounds the 2kn cost).
  int64_t dr_max_batches = 4;
  /// Cap on mini-batches per domain pass in DN inner loop (0 = full pass).
  int64_t dn_max_batches = 0;
  /// Inner optimizer: "adam" | "sgd" | "adagrad".
  std::string inner_optimizer = "adam";
  /// Finetune epochs (Alternate+Finetune, Separate).
  int64_t finetune_epochs = 2;
  /// DR update order ablation (§IV-B fixes helper -> target; Eq. 22 only
  /// regularizes the helper gradient when the target comes second).
  enum class DrOrder { kHelperFirst, kTargetFirst, kRandom };
  DrOrder dr_order = DrOrder::kHelperFirst;
  /// DN domain-shuffle ablation (Algorithm 1 line 3; the shuffle is what
  /// symmetrizes the InnerGrad term in Eq. 19).
  bool dn_shuffle = true;
  /// Batches per auxiliary-domain pass in the CDR-transfer baseline.
  int64_t cdr_transfer_batches = 2;
  uint64_t seed = 42;
  bool verbose = false;
};

class Framework {
 public:
  Framework(models::CtrModel* model, const data::MultiDomainDataset* dataset,
            TrainConfig config);
  virtual ~Framework() = default;

  /// One outer epoch of the algorithm. Non-virtual wrapper: opens a trace
  /// span named "<name>_epoch", runs the algorithm (DoTrainEpoch), then — if
  /// a telemetry sink is installed — flushes one DomainEpochRecord per
  /// domain trained this epoch (mean loss, batch count, gradient norm).
  void TrainEpoch();

  /// config.epochs calls to TrainEpoch().
  void Train();

  /// How many TrainEpoch() calls have completed on this framework.
  int64_t epochs_completed() const { return epochs_completed_; }

  /// Framework name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Scoring callback for evaluation. The default scores with the model's
  /// current parameters; frameworks with per-domain parameters override it
  /// to install the right parameters per domain.
  virtual metrics::ScoreFn Scorer();

  /// Whether Scorer() may be called concurrently from multiple threads.
  /// The default scorer is a pure forward pass and is; overrides that
  /// install per-domain parameters into the shared model must return false
  /// so Evaluate() falls back to serial per-domain evaluation.
  virtual bool ScorerIsThreadSafe() const { return true; }

  /// Per-domain AUC of any split with this framework's Scorer(). Domains
  /// are evaluated on the kernel pool when ScorerIsThreadSafe().
  std::vector<double> Evaluate(metrics::Split split);

  /// Per-domain test AUC with this framework's Scorer().
  std::vector<double> EvaluateTest();
  double AverageTestAuc();

  models::CtrModel* model() { return model_; }
  const TrainConfig& config() const { return config_; }

  /// Work counters for complexity comparisons (§III-C / §IV-C): how many
  /// single-domain training passes and mini-batch steps this framework has
  /// consumed. DN grows O(n) in the domain count; CDR-style transfer and
  /// PCGrad grow O(n^2). Composite frameworks (MAMDR) override these to sum
  /// their components.
  virtual int64_t domain_pass_count() const { return domain_pass_count_; }
  virtual int64_t batch_step_count() const { return batch_step_count_; }

 protected:
  /// The algorithm body of one outer epoch, implemented per framework.
  virtual void DoTrainEpoch() = 0;

  /// One pass of mini-batch training on a single domain with the given
  /// optimizer. max_batches=0 means the full epoch worth of batches.
  /// Returns the number of batches consumed. When a telemetry sink is
  /// installed, also accumulates per-domain loss / gradient-norm totals for
  /// the epoch's DomainEpochRecords.
  int64_t TrainDomainPass(int64_t domain, optim::Optimizer* opt,
                          int64_t max_batches = 0);

  /// Pairwise gradient-conflict statistics of the per-domain full-batch
  /// gradients at the current parameters (§III-B diagnostics). Uses a local
  /// RNG and eval-mode context so the training RNG stream is untouched;
  /// leaves all parameter gradients zeroed.
  metrics::ConflictReport MeasureDomainConflict();

  /// Fresh optimizer over params per config.inner_optimizer.
  std::unique_ptr<optim::Optimizer> MakeInnerOptimizer(float lr);

  models::CtrModel* model_;
  const data::MultiDomainDataset* dataset_;
  TrainConfig config_;
  std::vector<autograd::Var> params_;
  Rng rng_;
  int64_t domain_pass_count_ = 0;
  int64_t batch_step_count_ = 0;
  int64_t epochs_completed_ = 0;

 private:
  // Per-domain telemetry accumulators for the epoch in flight; only
  // maintained while a telemetry sink is installed.
  struct EpochAccumulator {
    double loss_sum = 0.0;
    double grad_sq_sum = 0.0;
    int64_t batches = 0;
  };
  std::vector<EpochAccumulator> epoch_acc_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_FRAMEWORK_H_
