// GradDrop: meta-learning gradient dropout (Tseng et al., ACCV'20 — [39] in
// the paper's related work).
//
// A Reptile-style per-task schedule where every inner-loop gradient is
// element-wise masked by an inverted-dropout Bernoulli mask. The random
// masking regularizes the inner adaptation so specific tasks (domains)
// cannot overfit the shared initialization. Included as an additional
// meta-learning baseline beyond the paper's Table X set.
#ifndef MAMDR_CORE_GRADDROP_H_
#define MAMDR_CORE_GRADDROP_H_

#include <memory>

#include "core/framework.h"

namespace mamdr {
namespace core {

class GradDrop : public Framework {
 public:
  /// drop_rate is the probability an inner-gradient element is zeroed.
  GradDrop(models::CtrModel* model, const data::MultiDomainDataset* dataset,
           TrainConfig config, float drop_rate = 0.2f);

  void DoTrainEpoch() override;
  std::string name() const override { return "GradDrop"; }

  float drop_rate() const { return drop_rate_; }

 private:
  /// One masked-gradient pass over a domain.
  void MaskedDomainPass(int64_t domain, optim::Optimizer* opt);

  float drop_rate_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_GRADDROP_H_
