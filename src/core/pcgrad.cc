#include "core/pcgrad.h"

#include "data/batch.h"
#include "optim/param_snapshot.h"
#include "tensor/tensor_ops.h"

namespace mamdr {
namespace core {

PcGrad::PcGrad(models::CtrModel* model,
               const data::MultiDomainDataset* dataset, TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  opt_ = MakeInnerOptimizer(config_.inner_lr);
}

void PcGrad::DoTrainEpoch() {
  const int64_t n = dataset_->num_domains();
  std::vector<data::Batcher> batchers;
  batchers.reserve(static_cast<size_t>(n));
  for (int64_t d = 0; d < n; ++d) {
    batchers.emplace_back(&dataset_->domain(d).train, config_.batch_size,
                          &rng_);
  }
  nn::Context ctx{/*training=*/true, &rng_};
  data::Batch batch;
  bool any = true;
  while (any) {
    any = false;
    // Per-domain flattened gradients at the shared point.
    std::vector<Tensor> grads;
    std::vector<Tensor> layout = optim::GradSnapshot(params_);
    for (int64_t d = 0; d < n; ++d) {
      if (!batchers[static_cast<size_t>(d)].Next(&batch)) continue;
      any = true;
      for (auto& p : params_) p.ZeroGrad();
      autograd::Var loss = model_->Loss(batch, d, ctx);
      loss.Backward();
      ++batch_step_count_;
      grads.push_back(optim::Flatten(optim::GradSnapshot(params_)));
    }
    if (grads.size() < 1) break;
    // Gradient surgery: project each g_i off conflicting g_j (random order).
    std::vector<Tensor> projected;
    projected.reserve(grads.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      Tensor gi = grads[i].Clone();
      std::vector<size_t> order;
      for (size_t j = 0; j < grads.size(); ++j) {
        if (j != i) order.push_back(j);
      }
      rng_.Shuffle(&order);
      for (size_t j : order) {
        const float ip = ops::Dot(gi, grads[j]);
        if (ip < 0.0f) {
          const float denom = ops::SquaredNorm(grads[j]);
          if (denom > 1e-12f) {
            ops::AxpyInPlace(&gi, grads[j], -ip / denom);
          }
        }
      }
      projected.push_back(std::move(gi));
    }
    // Sum projected gradients and take one optimizer step.
    Tensor total = projected[0].Clone();
    for (size_t i = 1; i < projected.size(); ++i) {
      ops::AxpyInPlace(&total, projected[i], 1.0f);
    }
    optim::SetGrads(params_, optim::Unflatten(total, layout));
    opt_->Step();
  }
}

}  // namespace core
}  // namespace mamdr
