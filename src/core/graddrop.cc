#include "core/graddrop.h"

#include "data/batch.h"
#include "optim/param_snapshot.h"

namespace mamdr {
namespace core {

GradDrop::GradDrop(models::CtrModel* model,
                   const data::MultiDomainDataset* dataset, TrainConfig config,
                   float drop_rate)
    : Framework(model, dataset, std::move(config)), drop_rate_(drop_rate) {
  MAMDR_CHECK_GE(drop_rate, 0.0f);
  MAMDR_CHECK_LT(drop_rate, 1.0f);
}

void GradDrop::MaskedDomainPass(int64_t domain, optim::Optimizer* opt) {
  const auto& train = dataset_->domain(domain).train;
  data::Batcher batcher(&train, config_.batch_size, &rng_);
  nn::Context ctx{/*training=*/true, &rng_};
  data::Batch batch;
  const float keep_scale = 1.0f / (1.0f - drop_rate_);
  int64_t batches = 0;
  while (batcher.Next(&batch)) {
    opt->ZeroGrad();
    model_->Loss(batch, domain, ctx).Backward();
    // Inverted-dropout mask on every gradient element.
    for (auto& p : params_) {
      if (!p.has_grad()) continue;
      float* g = p.mutable_grad().data();
      const int64_t n = p.grad().size();
      for (int64_t i = 0; i < n; ++i) {
        g[i] = rng_.Bernoulli(drop_rate_) ? 0.0f : g[i] * keep_scale;
      }
    }
    opt->Step();
    ++batches;
  }
  ++domain_pass_count_;
  batch_step_count_ += batches;
}

void GradDrop::DoTrainEpoch() {
  std::vector<int64_t> order(static_cast<size_t>(dataset_->num_domains()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  rng_.Shuffle(&order);
  for (int64_t d : order) {
    const std::vector<Tensor> theta = optim::Snapshot(params_);
    auto inner = MakeInnerOptimizer(config_.inner_lr);
    MaskedDomainPass(d, inner.get());
    // Reptile-style per-task interpolation.
    optim::MetaInterpolate(params_, theta, config_.outer_lr);
  }
}

}  // namespace core
}  // namespace mamdr
