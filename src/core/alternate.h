// Alternate Training: one pass over each domain per epoch, single shared Θ.
// The conventional baseline (§III-C) — and the degenerate case of DN when
// the outer learning rate beta is 1.
#ifndef MAMDR_CORE_ALTERNATE_H_
#define MAMDR_CORE_ALTERNATE_H_

#include <memory>

#include "core/framework.h"

namespace mamdr {
namespace core {

class Alternate : public Framework {
 public:
  Alternate(models::CtrModel* model, const data::MultiDomainDataset* dataset,
            TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "Alternate"; }

 private:
  std::unique_ptr<optim::Optimizer> opt_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_ALTERNATE_H_
