#include "core/domain_negotiation.h"

#include "obs/telemetry.h"
#include "optim/param_snapshot.h"

namespace mamdr {
namespace core {

DomainNegotiation::DomainNegotiation(models::CtrModel* model,
                                     const data::MultiDomainDataset* dataset,
                                     TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  inner_opt_ = MakeInnerOptimizer(config_.inner_lr);
}

void DomainNegotiation::DoTrainEpoch() {
  // Opt-in conflict probe: measure cross-domain gradient alignment at the
  // epoch's starting point Θ, before the inner loop moves it (§III-B).
  if (obs::TelemetrySink* sink = obs::Sink();
      sink != nullptr && sink->options().probe_conflict) {
    const metrics::ConflictReport report = MeasureDomainConflict();
    obs::ConflictRecord r;
    r.framework = name();
    r.epoch = static_cast<int>(epochs_completed());
    r.mean_inner_product = report.mean_inner_product;
    r.mean_cosine = report.mean_cosine;
    r.conflict_rate = report.conflict_rate;
    r.num_pairs = static_cast<int>(report.num_pairs);
    sink->RecordConflict(std::move(r));
  }

  // Θ̃₁ ← Θ (the params already hold Θ; remember it for the outer update).
  // The inner optimizer's state (Adam moments) persists across outer
  // iterations — the inner loop is one continuous optimization trajectory
  // whose per-epoch displacement the outer update scales by β. Resetting the
  // state each epoch costs ~0.02 AUC at bench scale.
  const std::vector<Tensor> theta = optim::Snapshot(params_);

  // Randomly shuffle the domain order (Algorithm 1 line 3) — the shuffle is
  // what turns the Taylor cross-term into the symmetric InnerGrad (Eq. 19).
  // dn_shuffle=false keeps a fixed order, for the design-ablation bench.
  std::vector<int64_t> order(static_cast<size_t>(dataset_->num_domains()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  if (config_.dn_shuffle) rng_.Shuffle(&order);

  // Inner loop: sequential updates across domains (Eq. 2).
  for (int64_t d : order) {
    TrainDomainPass(d, inner_opt_.get(), config_.dn_max_batches);
  }

  // Outer loop: Θ ← Θ + β(Θ̃ₙ₊₁ − Θ) (Eq. 3).
  optim::MetaInterpolate(params_, theta, config_.outer_lr);
}

}  // namespace core
}  // namespace mamdr
