#include "core/cdr_transfer.h"

#include "optim/param_snapshot.h"

namespace mamdr {
namespace core {

CdrTransfer::CdrTransfer(models::CtrModel* model,
                         const data::MultiDomainDataset* dataset,
                         TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  per_domain_params_.assign(static_cast<size_t>(dataset_->num_domains()),
                            optim::Snapshot(params_));
}

void CdrTransfer::DoTrainEpoch() {
  const int64_t n = dataset_->num_domains();
  for (int64_t target = 0; target < n; ++target) {
    optim::Restore(params_, per_domain_params_[static_cast<size_t>(target)]);
    auto opt = MakeInnerOptimizer(config_.inner_lr);
    // Transfer from every auxiliary domain (the O(n^2) part)...
    for (int64_t aux = 0; aux < n; ++aux) {
      if (aux == target) continue;
      TrainDomainPass(aux, opt.get(), config_.cdr_transfer_batches);
    }
    // ...then adapt on the target with a full pass.
    TrainDomainPass(target, opt.get());
    per_domain_params_[static_cast<size_t>(target)] =
        optim::Snapshot(params_);
  }
}

metrics::ScoreFn CdrTransfer::Scorer() {
  return [this](const data::Batch& batch, int64_t domain) {
    optim::Restore(params_,
                   per_domain_params_[static_cast<size_t>(domain)]);
    return model_->Score(batch, domain);
  };
}

}  // namespace core
}  // namespace mamdr
