#include "core/finetune.h"

#include "optim/param_snapshot.h"

namespace mamdr {
namespace core {

AlternateFinetune::AlternateFinetune(models::CtrModel* model,
                                     const data::MultiDomainDataset* dataset,
                                     TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  opt_ = MakeInnerOptimizer(config_.inner_lr);
}

void AlternateFinetune::DoTrainEpoch() {
  std::vector<int64_t> order(static_cast<size_t>(dataset_->num_domains()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  rng_.Shuffle(&order);
  for (int64_t d : order) TrainDomainPass(d, opt_.get());
  ++epochs_done_;
  if (epochs_done_ == config_.epochs) FinalizeFinetune();
}

void AlternateFinetune::FinalizeFinetune() {
  const std::vector<Tensor> base = optim::Snapshot(params_);
  per_domain_params_.clear();
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    optim::Restore(params_, base);
    auto opt = MakeInnerOptimizer(config_.inner_lr);
    for (int64_t e = 0; e < config_.finetune_epochs; ++e) {
      TrainDomainPass(d, opt.get());
    }
    per_domain_params_.push_back(optim::Snapshot(params_));
  }
  optim::Restore(params_, base);
  finetuned_ = true;
}

metrics::ScoreFn AlternateFinetune::Scorer() {
  if (!finetuned_) return Framework::Scorer();
  return [this](const data::Batch& batch, int64_t domain) {
    optim::Restore(params_,
                   per_domain_params_[static_cast<size_t>(domain)]);
    return model_->Score(batch, domain);
  };
}

Separate::Separate(models::CtrModel* model,
                   const data::MultiDomainDataset* dataset, TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  // Every domain starts from the same initialization.
  const std::vector<Tensor> base = optim::Snapshot(params_);
  per_domain_params_.assign(static_cast<size_t>(dataset_->num_domains()),
                            base);
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    opts_.push_back(MakeInnerOptimizer(config_.inner_lr));
  }
}

void Separate::DoTrainEpoch() {
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    optim::Restore(params_, per_domain_params_[static_cast<size_t>(d)]);
    TrainDomainPass(d, opts_[static_cast<size_t>(d)].get());
    per_domain_params_[static_cast<size_t>(d)] = optim::Snapshot(params_);
  }
}

metrics::ScoreFn Separate::Scorer() {
  return [this](const data::Batch& batch, int64_t domain) {
    optim::Restore(params_,
                   per_domain_params_[static_cast<size_t>(domain)]);
    return model_->Score(batch, domain);
  };
}

}  // namespace core
}  // namespace mamdr
