// Uncertainty-weighted multi-task loss (Kendall et al., CVPR'18).
//
// Each domain d gets a learnable log-variance s_d; a batch from domain d is
// trained with  exp(-s_d) * L_d + s_d,  so the weights balance themselves
// during training. §V-G discusses why this cannot resolve gradient conflict.
#ifndef MAMDR_CORE_WEIGHTED_LOSS_H_
#define MAMDR_CORE_WEIGHTED_LOSS_H_

#include <memory>
#include <vector>

#include "core/framework.h"

namespace mamdr {
namespace core {

class WeightedLoss : public Framework {
 public:
  WeightedLoss(models::CtrModel* model,
               const data::MultiDomainDataset* dataset, TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "Weighted Loss"; }

  /// Current weight exp(-s_d) of a domain (introspection / tests).
  float DomainWeight(int64_t domain) const;

 private:
  std::vector<autograd::Var> log_vars_;  // s_d, one scalar per domain
  std::unique_ptr<optim::Optimizer> opt_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_WEIGHTED_LOSS_H_
