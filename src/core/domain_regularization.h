// Domain Regularization (Algorithm 2) — the paper's second contribution.
//
// Domain-specific parameters θᵢ are composed with the shared parameters as
// Θ = θS + θᵢ (Eq. 4). For a target domain i, DR samples k helper domains;
// for each helper j it updates a scratch copy first on j, THEN on i (fixed
// order — the i-update regularizes j's contribution, Eq. 22), and applies
// the meta step θᵢ ← θᵢ + γ(θ̃ᵢ − θᵢ) (Eq. 8). This imports only the helper
// information that lowers the target's loss — the cure for specific-parameter
// overfitting on sparse domains.
//
// As a standalone framework ("DR" row of Table X), the shared parameters are
// trained with an Alternate pass and the specific parameters with DR. MAMDR
// replaces the Alternate pass with DN.
#ifndef MAMDR_CORE_DOMAIN_REGULARIZATION_H_
#define MAMDR_CORE_DOMAIN_REGULARIZATION_H_

#include <memory>

#include "core/framework.h"
#include "core/param_store.h"

namespace mamdr {
namespace core {

class DomainRegularization : public Framework {
 public:
  /// If `external_store` is null the framework owns a store and trains the
  /// shared parameters itself (Alternate); otherwise it only runs the DR
  /// phase against the given store (MAMDR composition).
  DomainRegularization(models::CtrModel* model,
                       const data::MultiDomainDataset* dataset,
                       TrainConfig config,
                       SharedSpecificStore* external_store = nullptr);

  void DoTrainEpoch() override;
  std::string name() const override { return "DR"; }
  metrics::ScoreFn Scorer() override;
  bool ScorerIsThreadSafe() const override { return false; }

  /// Algorithm 2 for every domain's specific parameters.
  void DrPhase();

  /// Algorithm 2 for one target domain (used by the distributed workers,
  /// which run DR only for the domains they own).
  void DrForDomain(int64_t target);

  SharedSpecificStore* store() {
    return external_store_ != nullptr ? external_store_ : owned_store_.get();
  }

 private:
  std::unique_ptr<SharedSpecificStore> owned_store_;
  SharedSpecificStore* external_store_;
  std::unique_ptr<optim::Optimizer> shared_opt_;
  /// Completed DrPhase() calls — the epoch index on DrHelperRecords (the
  /// base epochs_completed_ does not advance when MAMDR calls DrPhase()
  /// directly).
  int64_t dr_phase_count_ = 0;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_DOMAIN_REGULARIZATION_H_
