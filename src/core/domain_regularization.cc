#include "core/domain_regularization.h"

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optim/param_snapshot.h"

namespace mamdr {
namespace core {

DomainRegularization::DomainRegularization(
    models::CtrModel* model, const data::MultiDomainDataset* dataset,
    TrainConfig config, SharedSpecificStore* external_store)
    : Framework(model, dataset, std::move(config)),
      external_store_(external_store) {
  if (external_store_ == nullptr) {
    owned_store_ = std::make_unique<SharedSpecificStore>(
        params_, dataset_->num_domains());
    shared_opt_ = MakeInnerOptimizer(config_.inner_lr);
  }
}

void DomainRegularization::DoTrainEpoch() {
  if (external_store_ == nullptr) {
    // Standalone DR: shared parameters get a plain Alternate pass.
    SharedSpecificStore* s = store();
    s->InstallShared();
    std::vector<int64_t> order(static_cast<size_t>(dataset_->num_domains()));
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = static_cast<int64_t>(i);
    }
    rng_.Shuffle(&order);
    for (int64_t d : order) TrainDomainPass(d, shared_opt_.get());
    s->UpdateSharedFromParams();
  }
  DrPhase();
}

void DomainRegularization::DrPhase() {
  MAMDR_TRACE_SPAN("dr_phase");
  for (int64_t i = 0; i < dataset_->num_domains(); ++i) DrForDomain(i);
  ++dr_phase_count_;
}

void DomainRegularization::DrForDomain(int64_t target) {
  SharedSpecificStore* s = store();
  const int64_t n = dataset_->num_domains();

  // Sample k helper domains (Algorithm 2 line 1), excluding the target when
  // other domains exist.
  std::vector<int64_t> pool;
  for (int64_t d = 0; d < n; ++d) {
    if (d != target) pool.push_back(d);
  }
  std::vector<int64_t> helpers;
  if (pool.empty()) {
    helpers.push_back(target);  // single-domain corner: self-regularization
  } else {
    const size_t k = std::min<size_t>(
        static_cast<size_t>(config_.dr_sample_k), pool.size());
    for (size_t idx : rng_.SampleWithoutReplacement(pool.size(), k)) {
      helpers.push_back(pool[idx]);
    }
  }

  if (obs::TelemetrySink* sink = obs::Sink()) {
    obs::DrHelperRecord r;
    r.epoch = static_cast<int>(dr_phase_count_);
    r.target = static_cast<int>(target);
    for (int64_t j : helpers) r.helpers.push_back(static_cast<int>(j));
    sink->RecordDrHelpers(std::move(r));
  }

  // Work on the composite Θ = θS + θ_target; θS stays frozen, so composite
  // deltas are exactly specific-parameter deltas.
  s->InstallComposite(target);
  for (int64_t j : helpers) {
    const std::vector<Tensor> composite = optim::Snapshot(params_);
    auto inner = MakeInnerOptimizer(config_.inner_lr);
    // θ̃ᵢ ← update on helper domain j (Eq. 6), then on target domain i as
    // regularization (Eq. 7). The paper fixes the helper -> target order
    // (Eq. 22); the other orders exist for the design-ablation bench.
    bool helper_first = true;
    switch (config_.dr_order) {
      case TrainConfig::DrOrder::kHelperFirst:
        helper_first = true;
        break;
      case TrainConfig::DrOrder::kTargetFirst:
        helper_first = false;
        break;
      case TrainConfig::DrOrder::kRandom:
        helper_first = rng_.Bernoulli(0.5);
        break;
    }
    const int64_t first = helper_first ? j : target;
    const int64_t second = helper_first ? target : j;
    TrainDomainPass(first, inner.get(), config_.dr_max_batches);
    TrainDomainPass(second, inner.get(), config_.dr_max_batches);
    // θᵢ ← θᵢ + γ(θ̃ᵢ − θᵢ) (Eq. 8), expressed on the composite.
    optim::MetaInterpolate(params_, composite, config_.dr_lr);
  }
  s->UpdateSpecificFromComposite(target);
}

metrics::ScoreFn DomainRegularization::Scorer() {
  return [this](const data::Batch& batch, int64_t domain) {
    store()->InstallComposite(domain);
    return model_->Score(batch, domain);
  };
}

}  // namespace core
}  // namespace mamdr
