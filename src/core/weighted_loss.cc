#include "core/weighted_loss.h"

#include <cmath>

#include "data/batch.h"

namespace mamdr {
namespace core {

WeightedLoss::WeightedLoss(models::CtrModel* model,
                           const data::MultiDomainDataset* dataset,
                           TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  std::vector<autograd::Var> all = params_;
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    log_vars_.emplace_back(Tensor({1}), /*requires_grad=*/true,
                           "log_var" + std::to_string(d));
    all.push_back(log_vars_.back());
  }
  // One optimizer over model params + loss weights.
  TrainConfig saved = config_;
  params_ = all;  // MakeInnerOptimizer uses params_
  opt_ = MakeInnerOptimizer(saved.inner_lr);
  params_ = model_->Parameters();  // restore: meta-utilities see model params
}

void WeightedLoss::DoTrainEpoch() {
  // Interleave batches across domains so weights adapt jointly.
  std::vector<data::Batcher> batchers;
  batchers.reserve(static_cast<size_t>(dataset_->num_domains()));
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    batchers.emplace_back(&dataset_->domain(d).train, config_.batch_size,
                          &rng_);
  }
  nn::Context ctx{/*training=*/true, &rng_};
  bool any = true;
  data::Batch batch;
  while (any) {
    any = false;
    for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
      if (!batchers[static_cast<size_t>(d)].Next(&batch)) continue;
      any = true;
      opt_->ZeroGrad();
      autograd::Var l = model_->Loss(batch, d, ctx);
      autograd::Var s = log_vars_[static_cast<size_t>(d)];
      // exp(-s) * L + s.
      autograd::Var weighted = autograd::Add(
          autograd::Mul(autograd::Exp(autograd::Neg(s)), l), s);
      weighted.Backward();
      opt_->Step();
      ++batch_step_count_;
    }
  }
}

float WeightedLoss::DomainWeight(int64_t domain) const {
  return std::exp(-log_vars_[static_cast<size_t>(domain)].value().at(0));
}

}  // namespace core
}  // namespace mamdr
