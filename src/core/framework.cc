#include "core/framework.h"

#include <cmath>

#include "common/logging.h"
#include "data/batch.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optim/adagrad.h"
#include "optim/adam.h"
#include "optim/param_snapshot.h"
#include "optim/sgd.h"
#include "tensor/tensor_ops.h"

namespace mamdr {
namespace core {

Framework::Framework(models::CtrModel* model,
                     const data::MultiDomainDataset* dataset,
                     TrainConfig config)
    : model_(model),
      dataset_(dataset),
      config_(std::move(config)),
      rng_(config_.seed) {
  MAMDR_CHECK(model != nullptr);
  MAMDR_CHECK(dataset != nullptr);
  MAMDR_CHECK_GT(dataset->num_domains(), 0);
  params_ = model_->Parameters();
}

void Framework::TrainEpoch() {
  obs::TelemetrySink* sink = obs::Sink();
  if (sink != nullptr) {
    epoch_acc_.assign(static_cast<size_t>(dataset_->num_domains()),
                      EpochAccumulator{});
  }
  {
    obs::TraceSpan span(name() + "_epoch", "core");
    DoTrainEpoch();
  }
  if (sink != nullptr) {
    for (size_t d = 0; d < epoch_acc_.size(); ++d) {
      const EpochAccumulator& acc = epoch_acc_[d];
      if (acc.batches == 0) continue;
      obs::DomainEpochRecord r;
      r.framework = name();
      r.epoch = static_cast<int>(epochs_completed_);
      r.domain = static_cast<int>(d);
      r.batches = static_cast<int>(acc.batches);
      r.mean_loss = acc.loss_sum / static_cast<double>(acc.batches);
      r.grad_norm = std::sqrt(acc.grad_sq_sum);
      sink->RecordDomainEpoch(std::move(r));
    }
  }
  ++epochs_completed_;
}

void Framework::Train() {
  for (int64_t e = 0; e < config_.epochs; ++e) {
    TrainEpoch();
    if (config_.verbose) {
      MAMDR_LOG(Info) << name() << " epoch " << (e + 1) << "/"
                      << config_.epochs
                      << " avg test AUC=" << AverageTestAuc();
    }
  }
}

metrics::ScoreFn Framework::Scorer() {
  return [this](const data::Batch& batch, int64_t domain) {
    return model_->Score(batch, domain);
  };
}

std::vector<double> Framework::Evaluate(metrics::Split split) {
  obs::TraceSpan span("evaluate", "core");
  const metrics::EvalParallel policy = ScorerIsThreadSafe()
                                           ? metrics::EvalParallel::kParallel
                                           : metrics::EvalParallel::kSerial;
  std::vector<double> aucs =
      metrics::EvaluateAllDomains(*dataset_, split, Scorer(), policy);
  if (obs::TelemetrySink* sink = obs::Sink()) {
    const char* split_name = split == metrics::Split::kTrain  ? "train"
                             : split == metrics::Split::kVal ? "val"
                                                             : "test";
    for (size_t d = 0; d < aucs.size(); ++d) {
      obs::EvalRecord r;
      r.framework = name();
      r.split = split_name;
      r.domain = static_cast<int>(d);
      r.auc = aucs[d];
      sink->RecordEval(std::move(r));
    }
  }
  return aucs;
}

std::vector<double> Framework::EvaluateTest() {
  return Evaluate(metrics::Split::kTest);
}

double Framework::AverageTestAuc() {
  const auto aucs = EvaluateTest();
  double sum = 0.0;
  for (double a : aucs) sum += a;
  return sum / static_cast<double>(aucs.size());
}

int64_t Framework::TrainDomainPass(int64_t domain, optim::Optimizer* opt,
                                   int64_t max_batches) {
  const auto& train = dataset_->domain(domain).train;
  data::Batcher batcher(&train, config_.batch_size, &rng_);
  nn::Context ctx{/*training=*/true, &rng_};
  data::Batch batch;
  int64_t batches = 0;
  // Accumulate telemetry only when a sink is installed: the per-batch loss
  // read and gradient-norm reduction are pure overhead otherwise.
  const bool telemetry =
      obs::Sink() != nullptr &&
      domain < static_cast<int64_t>(epoch_acc_.size());
  EpochAccumulator* acc =
      telemetry ? &epoch_acc_[static_cast<size_t>(domain)] : nullptr;
  while (batcher.Next(&batch)) {
    opt->ZeroGrad();
    autograd::Var loss = model_->Loss(batch, domain, ctx);
    loss.Backward();
    if (acc != nullptr) {
      acc->loss_sum += static_cast<double>(loss.value().at(0));
      for (const autograd::Var& p : params_) {
        if (p.has_grad()) {
          acc->grad_sq_sum += static_cast<double>(ops::SquaredNorm(p.grad()));
        }
      }
      ++acc->batches;
    }
    opt->Step();
    ++batches;
    if (max_batches > 0 && batches >= max_batches) break;
  }
  ++domain_pass_count_;
  batch_step_count_ += batches;
  return batches;
}

metrics::ConflictReport Framework::MeasureDomainConflict() {
  obs::TraceSpan span("conflict_probe", "core");
  // Local RNG + eval-mode context: probing must not perturb the training
  // RNG stream, or enabling telemetry would change the training trajectory.
  Rng probe_rng(1);
  nn::Context ctx{/*training=*/false, &probe_rng};
  std::vector<Tensor> grads;
  grads.reserve(static_cast<size_t>(dataset_->num_domains()));
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    for (auto& p : params_) p.ZeroGrad();
    data::Batch b = data::Batcher::All(dataset_->domain(d).train);
    model_->Loss(b, d, ctx).Backward();
    grads.push_back(optim::Flatten(optim::GradSnapshot(params_)));
  }
  for (auto& p : params_) p.ZeroGrad();
  return metrics::MeasureConflict(grads);
}

std::unique_ptr<optim::Optimizer> Framework::MakeInnerOptimizer(float lr) {
  if (config_.inner_optimizer == "sgd") {
    return std::make_unique<optim::Sgd>(params_, lr);
  }
  if (config_.inner_optimizer == "adagrad") {
    return std::make_unique<optim::Adagrad>(params_, lr);
  }
  MAMDR_CHECK(config_.inner_optimizer == "adam")
      << "unknown inner optimizer '" << config_.inner_optimizer << "'";
  return std::make_unique<optim::Adam>(params_, lr);
}

}  // namespace core
}  // namespace mamdr
