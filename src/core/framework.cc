#include "core/framework.h"

#include "common/logging.h"
#include "data/batch.h"
#include "optim/adagrad.h"
#include "optim/adam.h"
#include "optim/sgd.h"

namespace mamdr {
namespace core {

Framework::Framework(models::CtrModel* model,
                     const data::MultiDomainDataset* dataset,
                     TrainConfig config)
    : model_(model),
      dataset_(dataset),
      config_(std::move(config)),
      rng_(config_.seed) {
  MAMDR_CHECK(model != nullptr);
  MAMDR_CHECK(dataset != nullptr);
  MAMDR_CHECK_GT(dataset->num_domains(), 0);
  params_ = model_->Parameters();
}

void Framework::Train() {
  for (int64_t e = 0; e < config_.epochs; ++e) {
    TrainEpoch();
    if (config_.verbose) {
      MAMDR_LOG(Info) << name() << " epoch " << (e + 1) << "/"
                      << config_.epochs
                      << " avg test AUC=" << AverageTestAuc();
    }
  }
}

metrics::ScoreFn Framework::Scorer() {
  return [this](const data::Batch& batch, int64_t domain) {
    return model_->Score(batch, domain);
  };
}

std::vector<double> Framework::Evaluate(metrics::Split split) {
  const metrics::EvalParallel policy = ScorerIsThreadSafe()
                                           ? metrics::EvalParallel::kParallel
                                           : metrics::EvalParallel::kSerial;
  return metrics::EvaluateAllDomains(*dataset_, split, Scorer(), policy);
}

std::vector<double> Framework::EvaluateTest() {
  return Evaluate(metrics::Split::kTest);
}

double Framework::AverageTestAuc() {
  const auto aucs = EvaluateTest();
  double sum = 0.0;
  for (double a : aucs) sum += a;
  return sum / static_cast<double>(aucs.size());
}

int64_t Framework::TrainDomainPass(int64_t domain, optim::Optimizer* opt,
                                   int64_t max_batches) {
  const auto& train = dataset_->domain(domain).train;
  data::Batcher batcher(&train, config_.batch_size, &rng_);
  nn::Context ctx{/*training=*/true, &rng_};
  data::Batch batch;
  int64_t batches = 0;
  while (batcher.Next(&batch)) {
    opt->ZeroGrad();
    autograd::Var loss = model_->Loss(batch, domain, ctx);
    loss.Backward();
    opt->Step();
    ++batches;
    if (max_batches > 0 && batches >= max_batches) break;
  }
  ++domain_pass_count_;
  batch_step_count_ += batches;
  return batches;
}

std::unique_ptr<optim::Optimizer> Framework::MakeInnerOptimizer(float lr) {
  if (config_.inner_optimizer == "sgd") {
    return std::make_unique<optim::Sgd>(params_, lr);
  }
  if (config_.inner_optimizer == "adagrad") {
    return std::make_unique<optim::Adagrad>(params_, lr);
  }
  MAMDR_CHECK(config_.inner_optimizer == "adam")
      << "unknown inner optimizer '" << config_.inner_optimizer << "'";
  return std::make_unique<optim::Adam>(params_, lr);
}

}  // namespace core
}  // namespace mamdr
