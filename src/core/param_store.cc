#include "core/param_store.h"

#include "common/logging.h"
#include "optim/param_snapshot.h"
#include "tensor/tensor_ops.h"

namespace mamdr {
namespace core {

SharedSpecificStore::SharedSpecificStore(std::vector<autograd::Var> params,
                                         int64_t num_domains)
    : params_(std::move(params)) {
  MAMDR_CHECK(!params_.empty());
  MAMDR_CHECK_GT(num_domains, 0);
  shared_ = optim::Snapshot(params_);
  specific_.resize(static_cast<size_t>(num_domains));
  for (auto& s : specific_) {
    s.reserve(params_.size());
    for (const auto& p : params_) s.emplace_back(p.value().shape());
  }
}

void SharedSpecificStore::InstallShared() {
  optim::Restore(params_, shared_);
}

void SharedSpecificStore::InstallComposite(int64_t domain) {
  MAMDR_CHECK_GE(domain, 0);
  MAMDR_CHECK_LT(domain, num_domains());
  const auto& spec = specific_[static_cast<size_t>(domain)];
  for (size_t i = 0; i < params_.size(); ++i) {
    autograd::Var p = params_[i];
    Tensor& v = p.mutable_value();
    const float* ps = shared_[i].data();
    const float* pd = spec[i].data();
    float* pv = v.data();
    const int64_t n = v.size();
    for (int64_t j = 0; j < n; ++j) pv[j] = ps[j] + pd[j];
  }
}

void SharedSpecificStore::UpdateSharedFromParams() {
  shared_ = optim::Snapshot(params_);
}

void SharedSpecificStore::UpdateSpecificFromComposite(int64_t domain) {
  MAMDR_CHECK_GE(domain, 0);
  MAMDR_CHECK_LT(domain, num_domains());
  auto& spec = specific_[static_cast<size_t>(domain)];
  for (size_t i = 0; i < params_.size(); ++i) {
    const Tensor& v = params_[i].value();
    const float* pv = v.data();
    const float* ps = shared_[i].data();
    float* pd = spec[i].data();
    const int64_t n = v.size();
    for (int64_t j = 0; j < n; ++j) pd[j] = pv[j] - ps[j];
  }
}

int64_t SharedSpecificStore::AddDomain() {
  std::vector<Tensor> zeros;
  zeros.reserve(params_.size());
  for (const auto& p : params_) zeros.emplace_back(p.value().shape());
  specific_.push_back(std::move(zeros));
  return num_domains() - 1;
}

const std::vector<Tensor>& SharedSpecificStore::specific(
    int64_t domain) const {
  MAMDR_CHECK_GE(domain, 0);
  MAMDR_CHECK_LT(domain, num_domains());
  return specific_[static_cast<size_t>(domain)];
}

std::vector<Tensor>* SharedSpecificStore::mutable_specific(int64_t domain) {
  MAMDR_CHECK_GE(domain, 0);
  MAMDR_CHECK_LT(domain, num_domains());
  return &specific_[static_cast<size_t>(domain)];
}

int64_t SharedSpecificStore::SpecificParameterCount() const {
  int64_t n = 0;
  for (const auto& p : params_) n += p.value().size();
  return n;
}

}  // namespace core
}  // namespace mamdr
