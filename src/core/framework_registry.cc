#include "core/framework_registry.h"

#include "core/alternate.h"
#include "core/cdr_transfer.h"
#include "core/domain_negotiation.h"
#include "core/domain_regularization.h"
#include "core/finetune.h"
#include "core/graddrop.h"
#include "core/maml.h"
#include "core/mamdr.h"
#include "core/mldg.h"
#include "core/pcgrad.h"
#include "core/reptile.h"
#include "core/weighted_loss.h"

namespace mamdr {
namespace core {

Result<std::unique_ptr<Framework>> CreateFramework(
    const std::string& name, models::CtrModel* model,
    const data::MultiDomainDataset* dataset, const TrainConfig& config) {
  std::unique_ptr<Framework> fw;
  if (name == "Alternate") {
    fw = std::make_unique<Alternate>(model, dataset, config);
  } else if (name == "Alternate+Finetune") {
    fw = std::make_unique<AlternateFinetune>(model, dataset, config);
  } else if (name == "Separate") {
    fw = std::make_unique<Separate>(model, dataset, config);
  } else if (name == "Weighted Loss") {
    fw = std::make_unique<WeightedLoss>(model, dataset, config);
  } else if (name == "PCGrad") {
    fw = std::make_unique<PcGrad>(model, dataset, config);
  } else if (name == "MAML") {
    fw = std::make_unique<Maml>(model, dataset, config);
  } else if (name == "Reptile") {
    fw = std::make_unique<Reptile>(model, dataset, config);
  } else if (name == "MLDG") {
    fw = std::make_unique<Mldg>(model, dataset, config);
  } else if (name == "DN") {
    fw = std::make_unique<DomainNegotiation>(model, dataset, config);
  } else if (name == "DR") {
    fw = std::make_unique<DomainRegularization>(model, dataset, config);
  } else if (name == "MAMDR") {
    fw = std::make_unique<Mamdr>(model, dataset, config);
  } else if (name == "CDR-Transfer") {
    fw = std::make_unique<CdrTransfer>(model, dataset, config);
  } else if (name == "GradDrop") {
    fw = std::make_unique<GradDrop>(model, dataset, config);
  } else {
    return Status::NotFound("unknown framework '" + name + "'");
  }
  return fw;
}

std::vector<std::string> KnownFrameworks() {
  return {"Alternate", "Alternate+Finetune", "Separate", "Weighted Loss",
          "PCGrad",    "MAML",               "Reptile",  "MLDG",
          "DN",        "DR",                 "MAMDR",    "CDR-Transfer",
          "GradDrop"};
}

}  // namespace core
}  // namespace mamdr
