#include "core/mamdr.h"

namespace mamdr {
namespace core {

Mamdr::Mamdr(models::CtrModel* model, const data::MultiDomainDataset* dataset,
             TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  store_ = std::make_unique<SharedSpecificStore>(params_,
                                                 dataset_->num_domains());
  TrainConfig sub = config_;
  sub.seed = rng_.NextU64();
  dn_ = std::make_unique<DomainNegotiation>(model_, dataset_, sub);
  sub.seed = rng_.NextU64();
  dr_ = std::make_unique<DomainRegularization>(model_, dataset_, sub,
                                               store_.get());
}

void Mamdr::DoTrainEpoch() {
  // Line 2: update θS with Domain Negotiation.
  store_->InstallShared();
  dn_->TrainEpoch();
  store_->UpdateSharedFromParams();
  // Lines 3-5: update every θᵢ with Domain Regularization.
  dr_->DrPhase();
}

metrics::ScoreFn Mamdr::Scorer() {
  return [this](const data::Batch& batch, int64_t domain) {
    store_->InstallComposite(domain);
    return model_->Score(batch, domain);
  };
}

int64_t Mamdr::AddDomain() { return store_->AddDomain(); }

}  // namespace core
}  // namespace mamdr
