// Alternate+Finetune and Separate training.
//
// Alternate+Finetune: alternate-train shared Θ, then finetune a copy on each
// domain to get per-domain models (the traditional specific-parameter
// recipe of §IV-B). Separate: train an independent copy per domain from the
// initial point — the "one model per domain" strawman of Fig. 1(b) and the
// RAW+Separate row of Table VIII.
#ifndef MAMDR_CORE_FINETUNE_H_
#define MAMDR_CORE_FINETUNE_H_

#include <memory>
#include <vector>

#include "core/alternate.h"

namespace mamdr {
namespace core {

class AlternateFinetune : public Framework {
 public:
  AlternateFinetune(models::CtrModel* model,
                    const data::MultiDomainDataset* dataset,
                    TrainConfig config);

  void DoTrainEpoch() override;
  /// After the last epoch, call FinalizeFinetune() (Train() does this via
  /// the epoch counter) to produce the per-domain snapshots.
  std::string name() const override { return "Alternate+Finetune"; }
  metrics::ScoreFn Scorer() override;
  // Thread-safe only until FinalizeFinetune() swaps in per-domain params.
  bool ScorerIsThreadSafe() const override { return !finetuned_; }

 private:
  void FinalizeFinetune();

  std::unique_ptr<optim::Optimizer> opt_;
  int64_t epochs_done_ = 0;
  bool finetuned_ = false;
  std::vector<std::vector<Tensor>> per_domain_params_;
};

class Separate : public Framework {
 public:
  Separate(models::CtrModel* model, const data::MultiDomainDataset* dataset,
           TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "Separate"; }
  metrics::ScoreFn Scorer() override;
  bool ScorerIsThreadSafe() const override { return false; }

 private:
  std::vector<std::vector<Tensor>> per_domain_params_;
  /// One persistent optimizer per domain so Adam/Adagrad state tracks its
  /// own domain's trajectory.
  std::vector<std::unique_ptr<optim::Optimizer>> opts_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_FINETUNE_H_
