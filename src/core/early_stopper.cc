#include "core/early_stopper.h"

#include "common/logging.h"
#include "optim/param_snapshot.h"

namespace mamdr {
namespace core {

EarlyStopper::EarlyStopper(int64_t patience, double min_delta)
    : patience_(patience), min_delta_(min_delta) {
  MAMDR_CHECK_GT(patience, 0);
}

bool EarlyStopper::Observe(double metric, const nn::Module& module) {
  ++observed_;
  if (metric > best_metric_ + min_delta_) {
    best_metric_ = metric;
    best_epoch_ = observed_;
    bad_streak_ = 0;
    best_params_ = optim::Snapshot(module.Parameters());
    return true;
  }
  ++bad_streak_;
  return false;
}

void EarlyStopper::RestoreBest(nn::Module* module) const {
  if (best_params_.empty()) return;
  optim::Restore(module->Parameters(), best_params_);
}

}  // namespace core
}  // namespace mamdr
