// Framework factory by name (the rows of Table X).
#ifndef MAMDR_CORE_FRAMEWORK_REGISTRY_H_
#define MAMDR_CORE_FRAMEWORK_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/framework.h"

namespace mamdr {
namespace core {

/// Known names: Alternate, Alternate+Finetune, Separate, Weighted Loss,
/// PCGrad, MAML, Reptile, MLDG, DN, DR, MAMDR.
Result<std::unique_ptr<Framework>> CreateFramework(
    const std::string& name, models::CtrModel* model,
    const data::MultiDomainDataset* dataset, const TrainConfig& config);

std::vector<std::string> KnownFrameworks();

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_FRAMEWORK_REGISTRY_H_
