#include "core/alternate.h"

namespace mamdr {
namespace core {

Alternate::Alternate(models::CtrModel* model,
                     const data::MultiDomainDataset* dataset,
                     TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  opt_ = MakeInnerOptimizer(config_.inner_lr);
}

void Alternate::DoTrainEpoch() {
  std::vector<int64_t> order(static_cast<size_t>(dataset_->num_domains()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  rng_.Shuffle(&order);
  for (int64_t d : order) TrainDomainPass(d, opt_.get());
}

}  // namespace core
}  // namespace mamdr
