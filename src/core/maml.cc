#include "core/maml.h"

#include "data/batch.h"
#include "optim/param_snapshot.h"
#include "optim/sgd.h"

namespace mamdr {
namespace core {

Maml::Maml(models::CtrModel* model, const data::MultiDomainDataset* dataset,
           TrainConfig config)
    : Framework(model, dataset, std::move(config)) {
  // Static support/query split per domain (half and half).
  for (int64_t d = 0; d < dataset_->num_domains(); ++d) {
    const auto& train = dataset_->domain(d).train;
    const size_t half = train.size() / 2;
    support_.emplace_back(train.begin(),
                          train.begin() + static_cast<int64_t>(half));
    query_.emplace_back(train.begin() + static_cast<int64_t>(half),
                        train.end());
  }
  meta_opt_ = MakeInnerOptimizer(config_.inner_lr);
}

void Maml::DoTrainEpoch() {
  nn::Context ctx{/*training=*/true, &rng_};
  std::vector<int64_t> order(static_cast<size_t>(dataset_->num_domains()));
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  rng_.Shuffle(&order);
  data::Batch batch;
  for (int64_t d : order) {
    if (support_[static_cast<size_t>(d)].empty() ||
        query_[static_cast<size_t>(d)].empty()) {
      continue;
    }
    const std::vector<Tensor> theta = optim::Snapshot(params_);
    // Inner adaptation on the support set (plain SGD, as in MAML).
    optim::Sgd inner(params_, config_.inner_lr);
    data::Batcher sup(&support_[static_cast<size_t>(d)], config_.batch_size,
                      &rng_);
    while (sup.Next(&batch)) {
      inner.ZeroGrad();
      model_->Loss(batch, d, ctx).Backward();
      inner.Step();
    }
    // Query gradient at the adapted point == first-order meta-gradient.
    data::Batch q = data::Batcher::Sample(
        query_[static_cast<size_t>(d)],
        std::min<int64_t>(config_.batch_size * 2,
                          static_cast<int64_t>(
                              query_[static_cast<size_t>(d)].size())),
        &rng_);
    for (auto& p : params_) p.ZeroGrad();
    model_->Loss(q, d, ctx).Backward();
    const std::vector<Tensor> meta_grad = optim::GradSnapshot(params_);
    // Apply the meta-gradient at the *initial* parameters.
    optim::Restore(params_, theta);
    optim::SetGrads(params_, meta_grad);
    meta_opt_->Step();
  }
}

}  // namespace core
}  // namespace mamdr
