// CDR-style pairwise transfer adapted to MDR (§III-C's "prior attempts").
//
// Cross-domain recommendation improves one target domain with auxiliary
// domains. Adapting it to MDR means treating every domain as the target and
// transferring from every auxiliary — per epoch, for each target i, the
// model takes a capped pass over each auxiliary j != i and then adapts on
// i, yielding a per-domain parameter set. This is O(n^2) domain passes per
// epoch, which is exactly the scalability complaint the paper raises (and
// the reason DN's O(n) schedule exists). Compare the two in
// bench_complexity.
#ifndef MAMDR_CORE_CDR_TRANSFER_H_
#define MAMDR_CORE_CDR_TRANSFER_H_

#include <vector>

#include "core/framework.h"

namespace mamdr {
namespace core {

class CdrTransfer : public Framework {
 public:
  CdrTransfer(models::CtrModel* model, const data::MultiDomainDataset* dataset,
              TrainConfig config);

  void DoTrainEpoch() override;
  std::string name() const override { return "CDR-Transfer"; }
  metrics::ScoreFn Scorer() override;
  bool ScorerIsThreadSafe() const override { return false; }

 private:
  std::vector<std::vector<Tensor>> per_domain_params_;
};

}  // namespace core
}  // namespace mamdr

#endif  // MAMDR_CORE_CDR_TRANSFER_H_
