// CSV import/export of multi-domain datasets.
//
// On-disk layout mirrors the released MAMDR benchmarks: one directory per
// dataset with a `meta.csv` (name, universe sizes, per-domain names and CTR
// ratios) and one `<domain>/<split>.csv` per domain and split, each row
// `user,item,label`.
#ifndef MAMDR_DATA_IO_H_
#define MAMDR_DATA_IO_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace mamdr {
namespace data {

/// Write the dataset under `dir` (created if missing).
Status SaveCsv(const MultiDomainDataset& ds, const std::string& dir);

/// Load a dataset previously written by SaveCsv.
Result<MultiDomainDataset> LoadCsv(const std::string& dir);

}  // namespace data
}  // namespace mamdr

#endif  // MAMDR_DATA_IO_H_
