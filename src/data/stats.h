// Dataset statistics (Tables I-IV of the paper).
#ifndef MAMDR_DATA_STATS_H_
#define MAMDR_DATA_STATS_H_

#include <string>
#include <vector>

#include "data/dataset.h"

namespace mamdr {
namespace data {

/// Per-domain statistics row.
struct DomainStats {
  std::string name;
  int64_t samples = 0;
  double percentage = 0.0;  // of all samples
  double ctr_ratio = 0.0;
};

/// Whole-dataset statistics (Table I row).
struct DatasetStats {
  std::string name;
  int64_t num_domains = 0;
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t train = 0;
  int64_t val = 0;
  int64_t test = 0;
  int64_t samples_per_domain = 0;  // mean
  std::vector<DomainStats> per_domain;
};

DatasetStats ComputeStats(const MultiDomainDataset& ds);

/// Render like Table I (+ per-domain breakdown like Tables II-IV).
std::string FormatStats(const DatasetStats& stats, bool per_domain = true);

}  // namespace data
}  // namespace mamdr

#endif  // MAMDR_DATA_STATS_H_
