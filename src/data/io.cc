#include "data/io.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace mamdr {
namespace data {
namespace {

namespace fs = std::filesystem;

/// Domain names may contain spaces; directory names must not.
std::string Slug(const std::string& name) {
  std::string out;
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

Status WriteSplit(const fs::path& path,
                  const std::vector<Interaction>& split) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path.string());
  out << "user,item,label\n";
  for (const auto& it : split) {
    out << it.user << ',' << it.item << ','
        << static_cast<int>(it.label) << '\n';
  }
  return out ? Status::OK()
             : Status::Internal("short write to " + path.string());
}

Status ReadSplit(const fs::path& path, std::vector<Interaction>* split) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("missing split file " + path.string());
  std::string line;
  std::getline(in, line);  // header
  if (line != "user,item,label") {
    return Status::InvalidArgument("bad header in " + path.string());
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Interaction it;
    // Parse into genuine long long locals: int64_t is `long` on LP64, so
    // aiming %lld at an int64_t* through a cast is a strict-aliasing
    // violation even though the sizes happen to match.
    long long user = 0, item = 0;
    int label = 0;
    if (std::sscanf(line.c_str(), "%lld,%lld,%d", &user, &item, &label) !=
        3) {
      return Status::InvalidArgument("bad row '" + line + "' in " +
                                     path.string());
    }
    it.user = static_cast<int64_t>(user);
    it.item = static_cast<int64_t>(item);
    it.label = static_cast<float>(label);
    split->push_back(it);
  }
  return Status::OK();
}

}  // namespace

Status SaveCsv(const MultiDomainDataset& ds, const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::Internal("mkdir " + dir + ": " + ec.message());

  {
    std::ofstream meta(fs::path(dir) / "meta.csv");
    if (!meta) return Status::Internal("cannot open meta.csv");
    meta.precision(17);  // round-trip exact doubles
    meta << "name," << ds.name() << "\n";
    meta << "num_users," << ds.num_users() << "\n";
    meta << "num_items," << ds.num_items() << "\n";
    for (const auto& d : ds.domains()) {
      meta << "domain," << d.name << ',' << d.ctr_ratio << "\n";
    }
  }
  for (const auto& d : ds.domains()) {
    const fs::path ddir = fs::path(dir) / Slug(d.name);
    fs::create_directories(ddir, ec);
    if (ec) return Status::Internal("mkdir " + ddir.string());
    MAMDR_RETURN_NOT_OK(WriteSplit(ddir / "train.csv", d.train));
    MAMDR_RETURN_NOT_OK(WriteSplit(ddir / "val.csv", d.val));
    MAMDR_RETURN_NOT_OK(WriteSplit(ddir / "test.csv", d.test));
  }
  return Status::OK();
}

Result<MultiDomainDataset> LoadCsv(const std::string& dir) {
  std::ifstream meta(fs::path(dir) / "meta.csv");
  if (!meta) return Status::NotFound("missing meta.csv in " + dir);

  std::string name;
  int64_t num_users = 0, num_items = 0;
  struct DomainMeta {
    std::string name;
    double ctr_ratio;
  };
  std::vector<DomainMeta> domain_meta;

  std::string line;
  while (std::getline(meta, line)) {
    if (line.empty()) continue;
    std::istringstream ss(line);
    std::string key;
    std::getline(ss, key, ',');
    if (key == "name") {
      std::getline(ss, name);
    } else if (key == "num_users") {
      ss >> num_users;
    } else if (key == "num_items") {
      ss >> num_items;
    } else if (key == "domain") {
      DomainMeta dm;
      std::getline(ss, dm.name, ',');
      ss >> dm.ctr_ratio;
      domain_meta.push_back(std::move(dm));
    } else {
      return Status::InvalidArgument("unknown meta key '" + key + "'");
    }
  }
  if (num_users <= 0 || num_items <= 0) {
    return Status::InvalidArgument("meta.csv missing universe sizes");
  }

  MultiDomainDataset ds(name, num_users, num_items);
  for (const auto& dm : domain_meta) {
    DomainData d;
    d.name = dm.name;
    d.ctr_ratio = dm.ctr_ratio;
    const fs::path ddir = fs::path(dir) / Slug(dm.name);
    MAMDR_RETURN_NOT_OK(ReadSplit(ddir / "train.csv", &d.train));
    MAMDR_RETURN_NOT_OK(ReadSplit(ddir / "val.csv", &d.val));
    MAMDR_RETURN_NOT_OK(ReadSplit(ddir / "test.csv", &d.test));
    MAMDR_RETURN_NOT_OK(ds.AddDomain(std::move(d)));
  }
  MAMDR_RETURN_NOT_OK(ds.Validate());
  return ds;
}

}  // namespace data
}  // namespace mamdr
