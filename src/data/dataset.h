// Multi-domain dataset container with global user/item id spaces.
#ifndef MAMDR_DATA_DATASET_H_
#define MAMDR_DATA_DATASET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/types.h"

namespace mamdr {
namespace data {

/// A set of domains sharing one global user/item feature storage, mirroring
/// the Taobao MDR platform of Fig. 2: users and items may overlap across
/// domains; ids are global.
class MultiDomainDataset {
 public:
  MultiDomainDataset() = default;
  MultiDomainDataset(std::string name, int64_t num_users, int64_t num_items);

  const std::string& name() const { return name_; }
  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  int64_t num_domains() const { return static_cast<int64_t>(domains_.size()); }

  const DomainData& domain(int64_t i) const;
  DomainData& mutable_domain(int64_t i);
  const std::vector<DomainData>& domains() const { return domains_; }

  /// Append a domain; the platform analogue of onboarding a new scenario.
  /// Fails if a domain with the same name exists.
  Status AddDomain(DomainData domain);

  /// Totals across domains.
  int64_t TotalTrain() const;
  int64_t TotalVal() const;
  int64_t TotalTest() const;

  /// Validate invariants: ids within range, labels in {0,1}, non-empty
  /// splits for every domain.
  Status Validate() const;

 private:
  std::string name_;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  std::vector<DomainData> domains_;
};

}  // namespace data
}  // namespace mamdr

#endif  // MAMDR_DATA_DATASET_H_
