#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"

namespace mamdr {
namespace data {
namespace {

// Published per-domain sample shares (%) and CTR ratios (Tables II-IV).
struct ShareRatio {
  const char* name;
  double share;
  double ratio;
};

constexpr ShareRatio kAmazon6[] = {
    {"Musical Instruments", 7.11, 0.22}, {"Office Products", 23.17, 0.23},
    {"Patio Lawn and Garden", 17.87, 0.32}, {"Prime Pantry", 4.10, 0.23},
    {"Toys and Games", 31.80, 0.47}, {"Video Games", 15.94, 0.21},
};

constexpr ShareRatio kAmazon13[] = {
    {"Arts Crafts and Sewing", 11.86, 0.22},
    {"Digital Music", 3.78, 0.23},
    {"Gift Cards", 0.06, 0.32},
    {"Industrial and Scientific", 1.86, 0.23},
    {"Luxury Beauty", 0.43, 0.47},
    {"Magazine Subscriptions", 0.06, 0.21},
    {"Musical Instruments", 3.99, 0.36},
    {"Office Products", 15.58, 0.30},
    {"Patio Lawn and Garden", 11.36, 0.46},
    {"Prime Pantry", 3.22, 0.25},
    {"Software", 0.05, 0.30},
    {"Toys and Games", 36.97, 0.30},
    {"Video Games", 10.78, 0.27},
};

constexpr double kTaobaoShare[30] = {
    1.82, 0.96, 2.77, 8.60, 1.59, 0.99,  0.58, 3.31, 0.77, 2.46,
    4.03, 0.89, 1.22, 17.29, 2.14, 0.75, 1.94, 7.42, 1.67, 0.40,
    0.65, 4.03, 5.73, 1.01, 9.38, 0.73,  3.43, 5.36, 3.35, 4.72};
constexpr double kTaobaoRatio[30] = {
    0.22, 0.23, 0.32, 0.23, 0.47, 0.21, 0.36, 0.30, 0.46, 0.25,
    0.30, 0.30, 0.27, 0.20, 0.33, 0.23, 0.38, 0.22, 0.29, 0.33,
    0.47, 0.23, 0.24, 0.44, 0.21, 0.47, 0.37, 0.28, 0.45, 0.43};

int64_t PositivesFromShare(double share_pct, double ratio,
                           double total_samples) {
  // share is of *all* samples; positives are the ratio/(1+ratio) fraction.
  const double samples = share_pct / 100.0 * total_samples;
  const double pos = samples * ratio / (1.0 + ratio);
  return std::max<int64_t>(8, static_cast<int64_t>(std::llround(pos)));
}

uint64_t PairKey(int64_t user, int64_t item) {
  return (static_cast<uint64_t>(user) << 26) ^ static_cast<uint64_t>(item);
}

/// Stratified split of one domain's interactions into train/val/test so that
/// every split keeps both labels (needed for per-domain AUC).
void StratifiedSplit(std::vector<Interaction> all, double train_frac,
                     double val_frac, Rng* rng, DomainData* out) {
  std::vector<Interaction> pos, neg;
  for (const auto& it : all) (it.label > 0.5f ? pos : neg).push_back(it);
  rng->Shuffle(&pos);
  rng->Shuffle(&neg);
  auto place = [&](std::vector<Interaction>& group) {
    const size_t n = group.size();
    size_t n_train = static_cast<size_t>(std::floor(n * train_frac));
    size_t n_val = static_cast<size_t>(std::floor(n * val_frac));
    // Guarantee at least one of each label in train and test when possible.
    if (n >= 3) {
      n_train = std::max<size_t>(n_train, 1);
      if (n_train + n_val >= n) n_val = n - n_train - 1;
    }
    for (size_t i = 0; i < n; ++i) {
      if (i < n_train) {
        out->train.push_back(group[i]);
      } else if (i < n_train + n_val) {
        out->val.push_back(group[i]);
      } else {
        out->test.push_back(group[i]);
      }
    }
  };
  place(pos);
  place(neg);
  rng->Shuffle(&out->train);
  rng->Shuffle(&out->val);
  rng->Shuffle(&out->test);
}

}  // namespace

Result<MultiDomainDataset> Generate(const SyntheticConfig& config) {
  if (config.domains.empty()) {
    return Status::InvalidArgument("config has no domains");
  }
  if (config.train_frac <= 0.0 || config.val_frac < 0.0 ||
      config.train_frac + config.val_frac >= 1.0) {
    return Status::InvalidArgument("invalid train/val fractions");
  }
  if (config.num_users <= 0 || config.num_items <= 0 ||
      config.latent_dim <= 0) {
    return Status::InvalidArgument("non-positive universe sizes");
  }
  for (const auto& d : config.domains) {
    if (d.num_positives <= 0) {
      return Status::InvalidArgument("domain '" + d.name +
                                     "' has no positives");
    }
    if (d.ctr_ratio <= 0.0 || d.ctr_ratio > 1.0) {
      return Status::InvalidArgument("domain '" + d.name +
                                     "' ctr_ratio outside (0, 1]");
    }
  }

  Rng rng(config.seed);
  const int64_t u_count = config.num_users;
  const int64_t i_count = config.num_items;
  const int64_t latent = config.latent_dim;
  const double inv_sqrt_l = 1.0 / std::sqrt(static_cast<double>(latent));

  // Global latent factors with bucket structure: a user's latent mixes a
  // shared group component (index u % group_count) with an individual
  // component, so the model-side derived fields carry pooled signal.
  const double gw = std::sqrt(std::clamp(config.group_weight, 0.0, 1.0));
  const double iw = std::sqrt(1.0 - std::clamp(config.group_weight, 0.0, 1.0));
  std::vector<float> group_lat(
      static_cast<size_t>(config.group_count * latent));
  std::vector<float> cat_lat(static_cast<size_t>(config.cat_count * latent));
  for (auto& x : group_lat) x = static_cast<float>(rng.Normal() * inv_sqrt_l);
  for (auto& x : cat_lat) x = static_cast<float>(rng.Normal() * inv_sqrt_l);
  std::vector<float> z(static_cast<size_t>(u_count * latent));
  std::vector<float> w(static_cast<size_t>(i_count * latent));
  for (int64_t u = 0; u < u_count; ++u) {
    const float* g = group_lat.data() + (u % config.group_count) * latent;
    for (int64_t l = 0; l < latent; ++l) {
      z[static_cast<size_t>(u * latent + l)] = static_cast<float>(
          gw * g[l] + iw * rng.Normal() * inv_sqrt_l);
    }
  }
  for (int64_t v = 0; v < i_count; ++v) {
    const float* c = cat_lat.data() + (v % config.cat_count) * latent;
    for (int64_t l = 0; l < latent; ++l) {
      w[static_cast<size_t>(v * latent + l)] = static_cast<float>(
          gw * c[l] + iw * rng.Normal() * inv_sqrt_l);
    }
  }

  // Shared per-item quality: the cross-domain signal.
  std::vector<double> quality(static_cast<size_t>(i_count));
  for (auto& q : quality) q = rng.Normal(0.0, config.quality_std);

  MultiDomainDataset ds(config.name, u_count, i_count);

  for (const auto& spec : config.domains) {
    Rng drng = rng.Fork();
    // Domain preference mask: interpolate 1 <-> random sign.
    std::vector<double> mask(static_cast<size_t>(latent));
    for (auto& m : mask) {
      const double sign = drng.Bernoulli(0.5) ? 1.0 : -1.0;
      m = (1.0 - spec.conflict) * 1.0 + spec.conflict * sign;
    }
    // Per-domain item taste: what the specific parameters should capture.
    std::vector<double> dquality(static_cast<size_t>(i_count));
    for (auto& q : dquality) {
      q = drng.Normal(0.0, config.domain_quality_std);
    }

    // Domain user/item pools (partial overlap across domains).
    const int64_t pool_users = std::min<int64_t>(
        u_count, std::max<int64_t>(20, spec.num_positives * 3 / 5));
    const int64_t pool_items = std::min<int64_t>(
        i_count, std::max<int64_t>(15, spec.num_positives * 3 / 10));
    std::vector<size_t> users = drng.SampleWithoutReplacement(
        static_cast<size_t>(u_count), static_cast<size_t>(pool_users));
    std::vector<size_t> items = drng.SampleWithoutReplacement(
        static_cast<size_t>(i_count), static_cast<size_t>(pool_items));

    auto affinity = [&](int64_t uu, int64_t vv) {
      double a = quality[static_cast<size_t>(vv)] +
                 dquality[static_cast<size_t>(vv)];
      const float* zu = z.data() + uu * latent;
      const float* wv = w.data() + vv * latent;
      for (int64_t l = 0; l < latent; ++l) {
        a += static_cast<double>(zu[l]) * wv[l] *
             mask[static_cast<size_t>(l)];
      }
      return a;
    };

    // Zipf-like user activity: index into the pool via U^(1+skew), so low
    // pool positions are sampled far more often.
    auto sample_user = [&]() {
      const double r = std::pow(drng.Uniform(), 1.0 + config.user_skew);
      size_t pos = static_cast<size_t>(r * static_cast<double>(users.size()));
      if (pos >= users.size()) pos = users.size() - 1;
      return static_cast<int64_t>(users[pos]);
    };

    std::vector<Interaction> all;
    std::unordered_set<uint64_t> clicked;
    // Positives by rejection sampling on the click probability.
    int64_t produced = 0;
    int64_t attempts = 0;
    const int64_t max_attempts = spec.num_positives * 200;
    while (produced < spec.num_positives && attempts < max_attempts) {
      ++attempts;
      const int64_t uu = sample_user();
      const int64_t vv =
          static_cast<int64_t>(items[drng.UniformInt(items.size())]);
      const double p =
          1.0 / (1.0 + std::exp(-config.temperature * affinity(uu, vv)));
      if (!drng.Bernoulli(p)) continue;
      if (!clicked.insert(PairKey(uu, vv)).second) continue;
      all.push_back({uu, vv, 1.0f});
      ++produced;
    }
    if (produced == 0) {
      return Status::Internal("failed to generate positives for '" +
                              spec.name + "'");
    }
    // Negatives: uniform un-clicked pairs, count = #pos / ratio (Eq. 23).
    const int64_t num_neg = static_cast<int64_t>(
        std::llround(static_cast<double>(produced) / spec.ctr_ratio));
    int64_t neg_produced = 0;
    int64_t neg_attempts = 0;
    const int64_t max_neg_attempts = num_neg * 100;
    while (neg_produced < num_neg && neg_attempts < max_neg_attempts) {
      ++neg_attempts;
      // Same user skew as positives so user frequency alone carries no
      // label information.
      const int64_t uu = sample_user();
      const int64_t vv =
          static_cast<int64_t>(items[drng.UniformInt(items.size())]);
      if (clicked.count(PairKey(uu, vv)) > 0) continue;
      all.push_back({uu, vv, 0.0f});
      ++neg_produced;
    }

    DomainData domain;
    domain.name = spec.name;
    domain.ctr_ratio = static_cast<double>(produced) /
                       static_cast<double>(std::max<int64_t>(1, neg_produced));
    StratifiedSplit(std::move(all), config.train_frac, config.val_frac, &drng,
                    &domain);
    MAMDR_RETURN_NOT_OK(ds.AddDomain(std::move(domain)));
  }

  MAMDR_RETURN_NOT_OK(ds.Validate());
  return ds;
}

SyntheticConfig Amazon6Like(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "Amazon-6-like";
  c.num_users = 4000;
  c.num_items = 1500;
  c.seed = seed;
  const double total = 24000.0 * scale;
  for (const auto& sr : kAmazon6) {
    DomainSpec d;
    d.name = sr.name;
    d.num_positives = PositivesFromShare(sr.share, sr.ratio, total);
    d.ctr_ratio = sr.ratio;
    d.conflict = 0.6;
    c.domains.push_back(std::move(d));
  }
  return c;
}

SyntheticConfig Amazon13Like(double scale, uint64_t seed) {
  SyntheticConfig c;
  c.name = "Amazon-13-like";
  c.num_users = 4500;
  c.num_items = 1800;
  c.seed = seed;
  const double total = 26000.0 * scale;
  for (const auto& sr : kAmazon13) {
    DomainSpec d;
    d.name = sr.name;
    d.num_positives = PositivesFromShare(sr.share, sr.ratio, total);
    d.ctr_ratio = sr.ratio;
    d.conflict = 0.6;
    c.domains.push_back(std::move(d));
  }
  return c;
}

SyntheticConfig TaobaoLike(int num_domains, double scale, uint64_t seed) {
  MAMDR_CHECK(num_domains == 10 || num_domains == 20 || num_domains == 30)
      << "TaobaoLike supports 10/20/30 domains";
  SyntheticConfig c;
  c.name = "Taobao-" + std::to_string(num_domains) + "-like";
  c.num_users = 600 * num_domains / 10;
  c.num_items = 250 * num_domains / 10;
  c.seed = seed;
  // Taobao domains are sparser: smaller totals than Amazon.
  const double total = 730.0 * num_domains * scale;
  // Renormalize the first `num_domains` published shares.
  double share_sum = 0.0;
  for (int i = 0; i < num_domains; ++i) share_sum += kTaobaoShare[i];
  for (int i = 0; i < num_domains; ++i) {
    DomainSpec d;
    d.name = "D" + std::to_string(i + 1);
    d.num_positives = PositivesFromShare(
        kTaobaoShare[i] / share_sum * 100.0, kTaobaoRatio[i], total);
    d.ctr_ratio = kTaobaoRatio[i];
    d.conflict = 0.6;
    c.domains.push_back(std::move(d));
  }
  return c;
}

SyntheticConfig IndustryLike(int num_domains, double scale, uint64_t seed) {
  MAMDR_CHECK_GT(num_domains, 0);
  SyntheticConfig c;
  c.name = "Industry-like";
  c.num_users = 3000;
  c.num_items = 1200;
  c.seed = seed;
  Rng rng(seed ^ 0xABCDEF);
  for (int i = 0; i < num_domains; ++i) {
    DomainSpec d;
    d.name = "online-D" + std::to_string(i + 1);
    // Heavy-tailed sizes: a few large domains, many tiny ones.
    d.num_positives = std::max<int64_t>(
        10, static_cast<int64_t>(rng.LogNormal(4.8, 1.1) * scale));
    d.ctr_ratio = rng.Uniform(0.2, 0.5);
    d.conflict = rng.Uniform(0.3, 0.9);  // diverse relatedness (§V-A)
    c.domains.push_back(std::move(d));
  }
  return c;
}

}  // namespace data
}  // namespace mamdr
