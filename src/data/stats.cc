#include "data/stats.h"

#include "common/string_util.h"

namespace mamdr {
namespace data {

DatasetStats ComputeStats(const MultiDomainDataset& ds) {
  DatasetStats s;
  s.name = ds.name();
  s.num_domains = ds.num_domains();
  s.num_users = ds.num_users();
  s.num_items = ds.num_items();
  s.train = ds.TotalTrain();
  s.val = ds.TotalVal();
  s.test = ds.TotalTest();
  const int64_t total = s.train + s.val + s.test;
  if (s.num_domains > 0) s.samples_per_domain = total / s.num_domains;
  for (const auto& d : ds.domains()) {
    DomainStats row;
    row.name = d.name;
    row.samples = d.TotalSamples();
    row.percentage =
        total > 0 ? 100.0 * static_cast<double>(row.samples) / total : 0.0;
    row.ctr_ratio = d.ctr_ratio;
    s.per_domain.push_back(std::move(row));
  }
  return s;
}

std::string FormatStats(const DatasetStats& s, bool per_domain) {
  std::string out;
  out += RenderTable(
      {"Dataset", "#Domain", "#User", "#Item", "#Train", "#Val", "#Test",
       "Sample/Domain"},
      {{s.name, std::to_string(s.num_domains), std::to_string(s.num_users),
        std::to_string(s.num_items), std::to_string(s.train),
        std::to_string(s.val), std::to_string(s.test),
        std::to_string(s.samples_per_domain)}});
  if (per_domain) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& d : s.per_domain) {
      rows.push_back({d.name, std::to_string(d.samples),
                      FormatFloat(d.percentage, 2) + "%",
                      FormatFloat(d.ctr_ratio, 2)});
    }
    out += "\n";
    out += RenderTable({"Domain", "#Samples", "Percentage", "CTR Ratio"},
                       rows);
  }
  return out;
}

}  // namespace data
}  // namespace mamdr
