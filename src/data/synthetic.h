// Synthetic multi-domain CTR benchmark generators.
//
// The paper's public benchmarks (Amazon-6/13, Taobao-10/20/30) and industry
// dataset are reproduced *in shape* at laptop scale: same domain counts, the
// published per-domain sample shares and CTR ratios (Tables II-IV), partially
// overlapping user/item pools, and a controllable cross-domain preference
// conflict. See DESIGN.md §2 for the substitution argument.
//
// Generative model: every user u has a latent z_u, every item v a latent
// w_v plus a scalar *quality* q_v; every domain owns a preference mask m_d
// in R^L interpolating between all-ones (no conflict) and random signs
// (maximal conflict) and a per-item *domain quality* qd_{d,v} capturing the
// domain's own taste:
//
//   affinity(u, v, d) = sum_l z_ul * w_vl * m_dl + q_v + qd_{d,v}
//   positives: proposals accepted with prob sigmoid(temp * affinity)
//   negatives: un-clicked (u, v) pairs, count = #pos / ctr_ratio
//
// q_v is the cross-domain-shareable signal (shared parameters should learn
// it), qd is domain-specific (specific parameters should learn it), and the
// conflicting masks make shared-embedding gradients point against each other
// across domains — the domain-conflict phenomenon of §III-B. User activity
// follows a Zipf-like skew, as in real click logs.
#ifndef MAMDR_DATA_SYNTHETIC_H_
#define MAMDR_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace mamdr {
namespace data {

/// Per-domain generation spec.
struct DomainSpec {
  std::string name;
  int64_t num_positives = 0;
  double ctr_ratio = 0.3;  // #pos / #neg
  double conflict = 0.6;   // 0 = aligned with global, 1 = random signs
};

/// Whole-dataset generation spec.
struct SyntheticConfig {
  std::string name;
  int64_t num_users = 2000;
  int64_t num_items = 800;
  int64_t latent_dim = 4;
  double temperature = 3.0;   // steepness of the click probability
  /// Stddev of the shared item quality q_v and of the per-domain item
  /// quality qd_{d,v}. The domain component is deliberately strong — the
  /// paper's premise is that "varied domain marketing tactics result in
  /// diverse user behavior patterns" (§I).
  double quality_std = 0.8;
  double domain_quality_std = 1.0;
  /// User activity skew exponent (0 = uniform; higher = heavier head).
  double user_skew = 1.0;
  /// Users fall into `group_count` latent groups and items into `cat_count`
  /// categories (matching the model-side bucket fields u%G / v%C);
  /// `group_weight` is the fraction of latent variance explained by the
  /// bucket — the pooled, cross-domain-shareable part of the signal.
  int64_t group_count = 50;
  int64_t cat_count = 25;
  double group_weight = 0.6;
  double train_frac = 0.6;
  double val_frac = 0.2;      // test gets the remainder
  uint64_t seed = 17;
  std::vector<DomainSpec> domains;
};

/// Generate a dataset from a config. Fails on invalid fractions/specs.
Result<MultiDomainDataset> Generate(const SyntheticConfig& config);

/// Named benchmark configs mirroring the paper (scale = multiplier on the
/// default laptop-scale sample counts; 1.0 ≈ 24k total samples for Amazon-6).
SyntheticConfig Amazon6Like(double scale = 1.0, uint64_t seed = 17);
SyntheticConfig Amazon13Like(double scale = 1.0, uint64_t seed = 17);
SyntheticConfig TaobaoLike(int num_domains, double scale = 1.0,
                           uint64_t seed = 17);  // 10, 20 or 30
/// Heavy-tailed many-domain industry analogue (Taobao-online).
SyntheticConfig IndustryLike(int num_domains = 64, double scale = 1.0,
                             uint64_t seed = 17);

}  // namespace data
}  // namespace mamdr

#endif  // MAMDR_DATA_SYNTHETIC_H_
