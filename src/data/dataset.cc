#include "data/dataset.h"

#include "common/logging.h"

namespace mamdr {
namespace data {

MultiDomainDataset::MultiDomainDataset(std::string name, int64_t num_users,
                                       int64_t num_items)
    : name_(std::move(name)), num_users_(num_users), num_items_(num_items) {}

const DomainData& MultiDomainDataset::domain(int64_t i) const {
  MAMDR_CHECK_GE(i, 0);
  MAMDR_CHECK_LT(i, num_domains());
  return domains_[static_cast<size_t>(i)];
}

DomainData& MultiDomainDataset::mutable_domain(int64_t i) {
  MAMDR_CHECK_GE(i, 0);
  MAMDR_CHECK_LT(i, num_domains());
  return domains_[static_cast<size_t>(i)];
}

Status MultiDomainDataset::AddDomain(DomainData domain) {
  for (const auto& d : domains_) {
    if (d.name == domain.name) {
      return Status::AlreadyExists("domain '" + domain.name + "'");
    }
  }
  domains_.push_back(std::move(domain));
  return Status::OK();
}

int64_t MultiDomainDataset::TotalTrain() const {
  int64_t n = 0;
  for (const auto& d : domains_) n += static_cast<int64_t>(d.train.size());
  return n;
}

int64_t MultiDomainDataset::TotalVal() const {
  int64_t n = 0;
  for (const auto& d : domains_) n += static_cast<int64_t>(d.val.size());
  return n;
}

int64_t MultiDomainDataset::TotalTest() const {
  int64_t n = 0;
  for (const auto& d : domains_) n += static_cast<int64_t>(d.test.size());
  return n;
}

Status MultiDomainDataset::Validate() const {
  if (domains_.empty()) return Status::FailedPrecondition("no domains");
  for (const auto& d : domains_) {
    if (d.train.empty()) {
      return Status::FailedPrecondition("domain '" + d.name +
                                        "' has empty train split");
    }
    if (d.test.empty()) {
      return Status::FailedPrecondition("domain '" + d.name +
                                        "' has empty test split");
    }
    auto check_split = [&](const std::vector<Interaction>& split) -> Status {
      for (const auto& it : split) {
        if (it.user < 0 || it.user >= num_users_) {
          return Status::OutOfRange("user id out of range in '" + d.name +
                                    "'");
        }
        if (it.item < 0 || it.item >= num_items_) {
          return Status::OutOfRange("item id out of range in '" + d.name +
                                    "'");
        }
        if (it.label != 0.0f && it.label != 1.0f) {
          return Status::InvalidArgument("label not in {0,1} in '" + d.name +
                                         "'");
        }
      }
      return Status::OK();
    };
    MAMDR_RETURN_NOT_OK(check_split(d.train));
    MAMDR_RETURN_NOT_OK(check_split(d.val));
    MAMDR_RETURN_NOT_OK(check_split(d.test));
  }
  return Status::OK();
}

}  // namespace data
}  // namespace mamdr
