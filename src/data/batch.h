// Mini-batch iteration over one domain's interactions.
#ifndef MAMDR_DATA_BATCH_H_
#define MAMDR_DATA_BATCH_H_

#include <vector>

#include "common/random.h"
#include "data/types.h"

namespace mamdr {
namespace data {

/// One mini-batch in struct-of-arrays form (what models consume).
struct Batch {
  std::vector<int64_t> users;
  std::vector<int64_t> items;
  std::vector<float> labels;

  int64_t size() const { return static_cast<int64_t>(users.size()); }
};

/// Shuffling batcher over a span of interactions. Reshuffle() starts a new
/// epoch; Next() returns false when the epoch is exhausted.
class Batcher {
 public:
  Batcher(const std::vector<Interaction>* data, int64_t batch_size, Rng* rng);

  /// New epoch: reshuffle and rewind.
  void Reshuffle();

  /// Fill `out` with the next batch. Returns false at end of epoch.
  bool Next(Batch* out);

  /// All data as one batch (evaluation).
  static Batch All(const std::vector<Interaction>& data);

  /// At most `limit` random interactions as one batch.
  static Batch Sample(const std::vector<Interaction>& data, int64_t limit,
                      Rng* rng);

 private:
  const std::vector<Interaction>* data_;
  int64_t batch_size_;
  Rng* rng_;
  std::vector<size_t> order_;
  size_t cursor_ = 0;
};

}  // namespace data
}  // namespace mamdr

#endif  // MAMDR_DATA_BATCH_H_
