// Core data types for multi-domain CTR recommendation.
#ifndef MAMDR_DATA_TYPES_H_
#define MAMDR_DATA_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace mamdr {
namespace data {

/// One user-item interaction record (u, v, y) from Definition III.1.
struct Interaction {
  int64_t user = 0;
  int64_t item = 0;
  float label = 0.0f;  // 1 = clicked, 0 = not clicked
};

/// All data of one domain D^i = {U^i, V^i, T^i}, pre-split.
struct DomainData {
  std::string name;
  std::vector<Interaction> train;
  std::vector<Interaction> val;
  std::vector<Interaction> test;
  /// #positive / #negative, assigned per domain in [0.2, 0.5] (Eq. 23).
  double ctr_ratio = 0.0;

  int64_t TotalSamples() const {
    return static_cast<int64_t>(train.size() + val.size() + test.size());
  }
};

}  // namespace data
}  // namespace mamdr

#endif  // MAMDR_DATA_TYPES_H_
