#include "data/batch.h"

#include <algorithm>

#include "common/logging.h"

namespace mamdr {
namespace data {

Batcher::Batcher(const std::vector<Interaction>* data, int64_t batch_size,
                 Rng* rng)
    : data_(data), batch_size_(batch_size), rng_(rng) {
  MAMDR_CHECK(data != nullptr);
  MAMDR_CHECK_GT(batch_size, 0);
  MAMDR_CHECK(rng != nullptr);
  order_.resize(data->size());
  for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
  Reshuffle();
}

void Batcher::Reshuffle() {
  rng_->Shuffle(&order_);
  cursor_ = 0;
}

bool Batcher::Next(Batch* out) {
  if (cursor_ >= order_.size()) return false;
  const size_t end = std::min(cursor_ + static_cast<size_t>(batch_size_),
                              order_.size());
  out->users.clear();
  out->items.clear();
  out->labels.clear();
  out->users.reserve(end - cursor_);
  out->items.reserve(end - cursor_);
  out->labels.reserve(end - cursor_);
  for (size_t i = cursor_; i < end; ++i) {
    const Interaction& it = (*data_)[order_[i]];
    out->users.push_back(it.user);
    out->items.push_back(it.item);
    out->labels.push_back(it.label);
  }
  cursor_ = end;
  return true;
}

Batch Batcher::All(const std::vector<Interaction>& data) {
  Batch b;
  b.users.reserve(data.size());
  b.items.reserve(data.size());
  b.labels.reserve(data.size());
  for (const auto& it : data) {
    b.users.push_back(it.user);
    b.items.push_back(it.item);
    b.labels.push_back(it.label);
  }
  return b;
}

Batch Batcher::Sample(const std::vector<Interaction>& data, int64_t limit,
                      Rng* rng) {
  if (static_cast<int64_t>(data.size()) <= limit) return All(data);
  Batch b;
  auto idx = rng->SampleWithoutReplacement(data.size(),
                                           static_cast<size_t>(limit));
  for (size_t i : idx) {
    b.users.push_back(data[i].user);
    b.items.push_back(data[i].item);
    b.labels.push_back(data[i].label);
  }
  return b;
}

}  // namespace data
}  // namespace mamdr
