// Scenario: domain generalization (the paper's §VI future-work direction).
//
// DN's cross-domain gradient alignment should produce shared parameters
// that transfer better to a domain never seen in training. We train on 9
// domains with Alternate vs DN, then evaluate both *zero-shot* on the
// held-out 10th domain (no specific parameters, no finetuning).
//
//   ./build/examples/unseen_domain_generalization
#include <cstdio>

#include "core/framework_registry.h"
#include "data/synthetic.h"
#include "metrics/auc.h"
#include "models/registry.h"

using namespace mamdr;

int main() {
  auto full = data::Generate(data::TaobaoLike(10, 1.0, 29)).value();

  double alt_sum = 0.0, dn_sum = 0.0;
  const std::vector<int64_t> held_out_choices{4, 7, 9};
  for (int64_t held_out : held_out_choices) {
    data::MultiDomainDataset seen("seen", full.num_users(),
                                  full.num_items());
    for (int64_t d = 0; d < full.num_domains(); ++d) {
      if (d != held_out) MAMDR_CHECK(seen.AddDomain(full.domain(d)).ok());
    }

    models::ModelConfig mc;
    mc.num_users = seen.num_users();
    mc.num_items = seen.num_items();
    mc.num_domains = seen.num_domains();
    mc.embedding_dim = 16;
    mc.hidden = {64, 32};

    core::TrainConfig tc;
    tc.epochs = 18;  // enough for DN's damped outer step to converge too
    tc.batch_size = 256;

    auto zero_shot_auc = [&](const char* fw_name) {
      Rng rng(mc.seed);
      auto model = models::CreateModel("MLP", mc, &rng).value();
      auto fw =
          core::CreateFramework(fw_name, model.get(), &seen, tc).value();
      fw->Train();
      // Zero-shot: score the held-out domain's test set with domain id 0 —
      // single-domain MLPs ignore the id, so this is a pure
      // shared-parameter evaluation.
      data::Batch batch = data::Batcher::All(full.domain(held_out).test);
      const double unseen_auc =
          metrics::Auc(model->Score(batch, 0), batch.labels);
      std::printf("  %-10s seen avg AUC %.4f  unseen AUC %.4f\n", fw_name,
                  fw->AverageTestAuc(), unseen_auc);
      return unseen_auc;
    };

    std::printf("holding out '%s':\n",
                full.domain(held_out).name.c_str());
    alt_sum += zero_shot_auc("Alternate");
    dn_sum += zero_shot_auc("DN");
  }
  const double n = static_cast<double>(held_out_choices.size());
  std::printf("\nmean zero-shot AUC over %d held-out domains: "
              "Alternate %.4f vs DN %.4f (%+.4f)\n",
              static_cast<int>(n), alt_sum / n, dn_sum / n,
              (dn_sum - alt_sum) / n);
  return 0;
}
