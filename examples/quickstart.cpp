// Quickstart: generate a multi-domain CTR dataset, train a plain MLP with
// Alternate training and with MAMDR, and compare per-domain test AUC.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "common/string_util.h"
#include "core/alternate.h"
#include "core/mamdr.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "models/registry.h"

using namespace mamdr;

int main() {
  // 1. A small Taobao-like benchmark: 10 domains, published shares/ratios.
  data::SyntheticConfig gen = data::TaobaoLike(10, /*scale=*/0.5, /*seed=*/7);
  auto ds_result = data::Generate(gen);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "dataset generation failed: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  data::MultiDomainDataset ds = std::move(ds_result).value();
  std::printf("%s\n", data::FormatStats(data::ComputeStats(ds), false).c_str());

  // 2. Any model structure works; MAMDR never looks inside it.
  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 8;
  mc.hidden = {32, 16};

  core::TrainConfig tc;
  tc.epochs = 10;
  tc.batch_size = 128;
  tc.inner_lr = 1e-3f;
  tc.outer_lr = 0.5f;
  tc.dr_sample_k = 3;

  auto run = [&](const char* label, auto&& make_framework) {
    Rng rng(mc.seed);
    auto model = models::CreateModel("MLP", mc, &rng);
    MAMDR_CHECK(model.ok());
    auto fw = make_framework(model.value().get());
    fw->Train();
    const double auc = fw->AverageTestAuc();
    std::printf("%-12s avg test AUC = %.4f\n", label, auc);
    return auc;
  };

  const double alternate_auc =
      run("Alternate", [&](models::CtrModel* m) {
        return std::make_unique<core::Alternate>(m, &ds, tc);
      });
  const double mamdr_auc = run("MAMDR", [&](models::CtrModel* m) {
    return std::make_unique<core::Mamdr>(m, &ds, tc);
  });

  std::printf("\nMAMDR improvement: %+.4f AUC\n", mamdr_auc - alternate_auc);
  return 0;
}
