// Scenario: the offline->online serving pipeline.
//
// Trains MAMDR, checkpoints the model and the shared/specific store to
// disk, then simulates a serving process: a fresh replica loads both
// checkpoints, installs per-domain composites, registers candidate pools,
// and answers top-K requests; offline HitRate@K/NDCG@K validate the loaded
// artifacts.
//
//   ./build/examples/serving_pipeline [--metrics-port N]
//
// With --metrics-port N the replica also exposes live Prometheus metrics on
// 127.0.0.1:N/metrics (per-domain request counters, serving latency
// histograms) for the lifetime of the process — 0 (the default) serves
// nothing.
#include <cstdio>
#include <filesystem>
#include <set>

#include "checkpoint/checkpoint.h"
#include "common/flags.h"
#include "core/mamdr.h"
#include "data/synthetic.h"
#include "models/registry.h"
#include "serve/metrics_server.h"
#include "serve/recommender.h"

using namespace mamdr;

int main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  FlagParser flags = std::move(parsed).value();
  auto metrics_port = flags.GetIntChecked("metrics-port", 0);
  if (!metrics_port.ok()) {
    std::fprintf(stderr, "%s\n", metrics_port.status().ToString().c_str());
    return 2;
  }
  serve::MetricsServer metrics_server;
  if (metrics_port.value() > 0) {
    Status s = metrics_server.Start(static_cast<int>(metrics_port.value()));
    if (!s.ok()) {
      std::fprintf(stderr, "metrics-port: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("metrics endpoint: http://127.0.0.1:%d/metrics\n",
                metrics_server.port());
  }

  const std::string model_ckpt = "/tmp/mamdr_serving_model.ckpt";
  const std::string store_ckpt = "/tmp/mamdr_serving_store.ckpt";

  auto ds = data::Generate(data::TaobaoLike(10, 0.8, 23)).value();
  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};

  // ---- Offline: train and checkpoint ----
  {
    Rng rng(mc.seed);
    auto model = models::CreateModel("MLP", mc, &rng).value();
    core::TrainConfig tc;
    tc.epochs = 8;
    tc.dr_sample_k = 3;
    core::Mamdr mamdr(model.get(), &ds, tc);
    mamdr.Train();
    std::printf("offline training done, avg test AUC %.4f\n",
                mamdr.AverageTestAuc());
    MAMDR_CHECK(checkpoint::SaveModule(*model, model_ckpt).ok());
    MAMDR_CHECK(checkpoint::SaveStore(*mamdr.store(), store_ckpt).ok());
    std::printf("checkpoints written (%lld model params, %lld domains)\n",
                static_cast<long long>(model->NumParameters()),
                static_cast<long long>(mamdr.store()->num_domains()));
  }

  // ---- Online: a fresh replica loads the artifacts and serves ----
  {
    Rng rng(999);  // deliberately different init; the checkpoint overrides
    auto replica = models::CreateModel("MLP", mc, &rng).value();
    MAMDR_CHECK(checkpoint::LoadModule(replica.get(), model_ckpt).ok());
    core::SharedSpecificStore store(replica->Parameters(), ds.num_domains());
    MAMDR_CHECK(checkpoint::LoadStore(&store, store_ckpt).ok());

    // Scorer installing Θ = θS + θ_d per request domain.
    metrics::ScoreFn scorer = [&](const data::Batch& batch, int64_t domain) {
      store.InstallComposite(domain);
      return replica->Score(batch, domain);
    };
    serve::Recommender rec(replica.get(), scorer);

    // Candidate pools = items observed in each domain.
    for (int64_t d = 0; d < ds.num_domains(); ++d) {
      std::set<int64_t> items;
      for (const auto& it : ds.domain(d).train) items.insert(it.item);
      rec.SetCandidates(d, {items.begin(), items.end()});
    }

    // Serve a few requests.
    std::printf("\nsample top-5 recommendations:\n");
    for (int64_t d : {0, 3}) {
      const int64_t user = ds.domain(d).test.front().user;
      auto top = rec.TopK(user, d, 5);
      std::printf("  domain %s, user %lld:", ds.domain(d).name.c_str(),
                  static_cast<long long>(user));
      for (const auto& r : top) {
        std::printf(" %lld(%.3f)", static_cast<long long>(r.item), r.score);
      }
      std::printf("\n");
    }

    // Offline quality of the loaded artifacts.
    std::printf("\noffline top-K quality of the restored replica:\n");
    Rng eval_rng(7);
    double hit = 0.0, ndcg = 0.0;
    for (int64_t d = 0; d < ds.num_domains(); ++d) {
      const auto report = serve::EvaluateTopK(rec, ds, d, 10, 50, &eval_rng);
      hit += report.hit_rate / static_cast<double>(ds.num_domains());
      ndcg += report.ndcg / static_cast<double>(ds.num_domains());
    }
    std::printf("  HitRate@10 %.4f  NDCG@10 %.4f (50 sampled negatives)\n",
                hit, ndcg);
  }

  std::filesystem::remove(model_ckpt);
  std::filesystem::remove(store_ckpt);
  metrics_server.Stop();
  return 0;
}
