// Scenario: distributed training on the PS-Worker architecture (§IV-E).
//
// Spins up a parameter server and several workers, partitions the domains,
// trains MAMDR (DN on shared parameters + per-worker DR for owned domains),
// and prints the PS traffic accounting that the static/dynamic embedding
// cache saves.
//
//   ./build/examples/distributed_training
#include <cstdio>

#include "data/synthetic.h"
#include "common/logging.h"
#include "ps/distributed_mamdr.h"

using namespace mamdr;

int main() {
  auto ds_result = data::Generate(data::TaobaoLike(20, 1.0, 11));
  if (!ds_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  auto ds = std::move(ds_result).value();

  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};

  ps::DistributedConfig dc;
  dc.num_workers = 4;
  dc.model_name = "MLP";
  dc.use_embedding_cache = true;
  dc.run_dr = true;  // per-worker Domain Regularization for owned domains
  dc.train.epochs = 8;
  dc.train.batch_size = 256;
  dc.train.outer_lr = 0.5f;
  dc.train.dr_sample_k = 3;
  dc.train.dr_max_batches = 2;

  ps::DistributedMamdr dist(mc, &ds, dc);
  std::printf("domains -> workers: ");
  for (int64_t d = 0; d < ds.num_domains(); ++d) {
    std::printf("%lld->W%lld ", static_cast<long long>(d),
                static_cast<long long>(dist.OwnerOf(d)));
  }
  std::printf("\n\n");

  for (int64_t e = 1; e <= dc.train.epochs; ++e) {
    MAMDR_CHECK(dist.TrainEpoch().ok());
    if (e % 2 == 0) {
      std::printf("epoch %2lld  avg test AUC = %.4f\n",
                  static_cast<long long>(e), dist.AverageTestAuc());
    }
  }

  const auto stats = dist.server()->stats();
  std::printf("\nPS traffic with the embedding cache:\n");
  std::printf("  pull ops: %llu   rows pulled: %llu (%.2f MB)\n",
              static_cast<unsigned long long>(stats.pull_ops),
              static_cast<unsigned long long>(stats.rows_pulled),
              static_cast<double>(stats.bytes_pulled) / 1e6);
  std::printf("  push ops: %llu   rows pushed: %llu (%.2f MB)\n",
              static_cast<unsigned long long>(stats.push_ops),
              static_cast<unsigned long long>(stats.rows_pushed),
              static_cast<double>(stats.bytes_pushed) / 1e6);
  return 0;
}
