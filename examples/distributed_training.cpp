// Scenario: distributed training on the PS-Worker architecture (§IV-E),
// run against the *networked* parameter server with end-to-end tracing.
//
// Spins up a 4-shard ShardGroup on loopback, points every worker's
// NetPsClient at it, trains MAMDR (DN on shared parameters + per-worker DR
// for owned domains), and records the whole run as a distributed trace:
// the trainer process writes traces/trainer.trace.json, every shard writes
// its own traces/shard-<i>.trace.json, and
//
//   python3 tools/mamdr_tracemerge.py --align ping \
//       -o traces/merged.trace.json traces/*.trace.json
//
// stitches them into one chrome://tracing timeline where each cross-shard
// FanoutCall's client span links to the four server handler spans it
// caused. Each shard also serves live Prometheus text on its own
// 127.0.0.1:<port>/metrics while the run is going.
//
//   ./build/examples/distributed_training
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "data/synthetic.h"
#include "common/logging.h"
#include "common/random.h"
#include "models/registry.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "optim/param_snapshot.h"
#include "ps/distributed_mamdr.h"
#include "ps/net/net_ps_client.h"
#include "ps/net/shard_group.h"
#include "ps/worker.h"

using namespace mamdr;

int main() {
  auto ds_result = data::Generate(data::TaobaoLike(20, 1.0, 11));
  if (!ds_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  auto ds = std::move(ds_result).value();

  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};

  // The shard layout and initial values must match what DistributedMamdr
  // derives from its reference replica — same model, same seed.
  Rng rng(mc.seed);
  auto model = models::CreateModel("MLP", mc, &rng);
  MAMDR_CHECK(model.ok()) << model.status().ToString();
  std::vector<bool> is_embedding;
  ps::MakeDefaultRowExtractor(model.value().get(), mc, &is_embedding);
  std::vector<Tensor> layout = optim::Snapshot(model.value()->Parameters());

  // 4 shards on loopback, each a logical process: its own trace file, its
  // own /metrics endpoint (ephemeral ports, printed below).
  std::filesystem::create_directories("traces");
  ps::net::ShardGroupConfig gc;
  gc.num_shards = 4;
  gc.trace_dir = "traces";
  gc.metrics_base_port = 0;
  ps::net::ShardGroup group(gc, layout, is_embedding);
  MAMDR_CHECK(group.Start().ok());
  for (int s = 0; s < gc.num_shards; ++s) {
    std::printf("shard %d: rpc port %d, /metrics on 127.0.0.1:%d\n", s,
                group.port(s), group.shard_for_test(s)->metrics_port());
  }

  obs::TraceRecorder::Global().SetProcess(1, "trainer");
  obs::StartTracing();  // every RPC from here on carries a trace context

  ps::DistributedConfig dc;
  dc.num_workers = 4;
  dc.model_name = "MLP";
  dc.use_embedding_cache = true;
  dc.run_dr = true;  // per-worker Domain Regularization for owned domains
  dc.train.epochs = 4;
  dc.train.batch_size = 256;
  dc.train.outer_lr = 0.5f;
  dc.train.dr_sample_k = 3;
  dc.train.dr_max_batches = 2;
  dc.ps_client_factory = [&group, &layout, &is_embedding](
                             int64_t) -> std::unique_ptr<ps::PsClient> {
    ps::net::NetPsClientConfig cc;
    cc.num_shards = 4;
    return std::make_unique<ps::net::NetPsClient>(cc, group.directory(),
                                                  layout, is_embedding);
  };

  ps::DistributedMamdr dist(mc, &ds, dc);
  std::printf("domains -> workers: ");
  for (int64_t d = 0; d < ds.num_domains(); ++d) {
    std::printf("%lld->W%lld ", static_cast<long long>(d),
                static_cast<long long>(dist.OwnerOf(d)));
  }
  std::printf("\n\n");

  // A few pings give mamdr_tracemerge.py --align ping the matched client/
  // server span pairs it estimates per-shard clock offsets from.
  {
    ps::net::NetPsClientConfig cc;
    cc.num_shards = 4;
    ps::net::NetPsClient pinger(cc, group.directory(), layout, is_embedding);
    for (int round = 0; round < 3; ++round) {
      for (int s = 0; s < 4; ++s) MAMDR_CHECK(pinger.Ping(s).ok());
    }
  }

  for (int64_t e = 1; e <= dc.train.epochs; ++e) {
    MAMDR_CHECK(dist.TrainEpoch().ok());
    std::printf("epoch %2lld  avg test AUC = %.4f\n",
                static_cast<long long>(e), dist.AverageTestAuc());
  }

  obs::StopTracing();
  std::string error;
  MAMDR_CHECK(obs::WriteFile("traces/trainer.trace.json",
                             obs::TraceRecorder::Global().Json() + "\n",
                             &error))
      << error;
  group.Stop();  // flushes traces/shard-<i>.trace.json

  std::printf(
      "\nwrote traces/trainer.trace.json + 4 shard traces; merge with\n"
      "  python3 tools/mamdr_tracemerge.py --align ping \\\n"
      "      -o traces/merged.trace.json traces/*.trace.json\n"
      "and open the result in chrome://tracing or https://ui.perfetto.dev\n");
  return 0;
}
