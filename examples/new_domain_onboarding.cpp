// Scenario: onboarding a new domain on the MDR platform (Fig. 2).
//
// The platform serves N domains with a trained MAMDR model. A new promotion
// scenario launches: its users/items are registered in the global feature
// storage, the store grows zero-initialized specific parameters, and the
// domain serves *immediately* from the shared parameters — then sharpens
// with a few DR epochs, without touching the other domains' parameters.
//
//   ./build/examples/new_domain_onboarding
#include <cstdio>

#include "core/mamdr.h"
#include "data/synthetic.h"
#include "metrics/auc.h"
#include "models/registry.h"

using namespace mamdr;

int main() {
  // Generate 9 domains; hold the last one back as "the new scenario".
  auto full_result = data::Generate(data::TaobaoLike(10, 1.0, 13));
  if (!full_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 full_result.status().ToString().c_str());
    return 1;
  }
  auto full = std::move(full_result).value();
  data::MultiDomainDataset live("live", full.num_users(), full.num_items());
  for (int64_t d = 0; d + 1 < full.num_domains(); ++d) {
    MAMDR_CHECK(live.AddDomain(full.domain(d)).ok());
  }

  models::ModelConfig mc;
  mc.num_users = live.num_users();
  mc.num_items = live.num_items();
  mc.num_domains = live.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};

  core::TrainConfig tc;
  tc.epochs = 8;
  tc.batch_size = 256;
  tc.dr_sample_k = 3;

  Rng rng(mc.seed);
  auto model = models::CreateModel("MLP", mc, &rng).value();
  core::Mamdr mamdr(model.get(), &live, tc);
  std::printf("training on %lld live domains...\n",
              static_cast<long long>(live.num_domains()));
  mamdr.Train();
  std::printf("live avg test AUC: %.4f\n", mamdr.AverageTestAuc());

  // --- Onboarding ---
  std::printf("\nonboarding new domain '%s' (%lld samples)\n",
              full.domain(9).name.c_str(),
              static_cast<long long>(full.domain(9).TotalSamples()));
  MAMDR_CHECK(live.AddDomain(full.domain(9)).ok());
  const int64_t new_id = mamdr.AddDomain();

  auto new_domain_auc = [&] {
    data::Batch batch = data::Batcher::All(live.domain(new_id).test);
    auto scores = mamdr.Scorer()(batch, new_id);
    return metrics::Auc(scores, batch.labels);
  };

  // Cold start: the composite equals the shared parameters.
  std::printf("cold-start AUC (shared params only): %.4f\n",
              new_domain_auc());

  // A few more MAMDR epochs now include the new domain's DN pass and DR.
  for (int e = 1; e <= 4; ++e) {
    mamdr.TrainEpoch();
    std::printf("after epoch %d: new-domain AUC = %.4f\n", e,
                new_domain_auc());
  }
  std::printf("\nfinal avg test AUC across all %lld domains: %.4f\n",
              static_cast<long long>(live.num_domains()),
              mamdr.AverageTestAuc());
  return 0;
}
