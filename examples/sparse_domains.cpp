// Scenario: sparse domains (the Amazon-13 motivation, §V-D).
//
// A marketplace runs a handful of data-rich domains plus several long-tail
// domains with very little traffic. Per-domain finetuning overfits the tail;
// Domain Regularization learns each tail domain's specific parameters with
// the *help of other domains*. This example builds such a dataset and
// compares Alternate+Finetune against MAMDR, reporting the tail domains
// separately.
//
//   ./build/examples/sparse_domains
#include <cstdio>

#include "common/string_util.h"
#include "core/framework_registry.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "models/registry.h"

using namespace mamdr;

int main() {
  // 4 rich domains + 4 sparse domains, built directly from DomainSpecs.
  data::SyntheticConfig gen;
  gen.name = "rich+tail";
  gen.num_users = 2500;
  gen.num_items = 900;
  gen.seed = 19;
  for (int d = 0; d < 4; ++d) {
    gen.domains.push_back(
        {"rich-" + std::to_string(d), 1200, 0.3, 0.6});
  }
  for (int d = 0; d < 4; ++d) {
    gen.domains.push_back(
        {"tail-" + std::to_string(d), 30, 0.3, 0.6});
  }
  auto ds_result = data::Generate(gen);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  auto ds = std::move(ds_result).value();
  std::printf("%s\n", data::FormatStats(data::ComputeStats(ds)).c_str());

  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};

  core::TrainConfig tc;
  tc.epochs = 14;
  tc.batch_size = 256;
  tc.dr_sample_k = 3;
  tc.dr_max_batches = 3;

  auto evaluate = [&](const char* fw_name) {
    Rng rng(mc.seed);
    auto model = models::CreateModel("MLP", mc, &rng).value();
    auto fw = core::CreateFramework(fw_name, model.get(), &ds, tc).value();
    fw->Train();
    return fw->EvaluateTest();
  };

  const auto finetune = evaluate("Alternate+Finetune");
  const auto mamdr = evaluate("MAMDR");

  std::vector<std::vector<std::string>> rows;
  double ft_tail = 0.0, md_tail = 0.0;
  for (int64_t d = 0; d < ds.num_domains(); ++d) {
    rows.push_back({ds.domain(d).name,
                    std::to_string(ds.domain(d).TotalSamples()),
                    FormatFloat(finetune[static_cast<size_t>(d)], 4),
                    FormatFloat(mamdr[static_cast<size_t>(d)], 4)});
    if (d >= 4) {
      ft_tail += finetune[static_cast<size_t>(d)] / 4.0;
      md_tail += mamdr[static_cast<size_t>(d)] / 4.0;
    }
  }
  std::printf("%s\n", RenderTable({"Domain", "#Samples",
                                   "Alternate+Finetune", "MAMDR"},
                                  rows)
                          .c_str());
  std::printf("tail-domain average: finetune %.4f vs MAMDR %.4f (%+.4f)\n",
              ft_tail, md_tail, md_tail - ft_tail);
  return 0;
}
