#!/usr/bin/env python3
"""Unit tests for tools/mamdr_layering.py.

The core fixture builds a throwaway src/ tree in a temp directory, injects
include edges, and asserts the checker's verdict — including the required
negative test: an injected back-edge must fail the run.

Run directly (``python3 tools/mamdr_layering_test.py``) or via ctest.
"""

import contextlib
import os
import sys
import tempfile
import unittest

import mamdr_layering


def rules(findings):
    return [f.rule for f in findings]


@contextlib.contextmanager
def module_deps(deps):
    """Temporarily replace the declared DAG for a synthetic tree."""
    saved = mamdr_layering.MODULE_DEPS
    mamdr_layering.MODULE_DEPS = deps
    try:
        yield
    finally:
        mamdr_layering.MODULE_DEPS = saved


class TempTree:
    """Materialize {relpath: content} under a temp root and check it."""

    def __init__(self, files, allowlist=None):
        self.files = files
        self.allowlist = allowlist

    def check(self):
        with tempfile.TemporaryDirectory() as root:
            for rel, content in self.files.items():
                full = os.path.join(root, rel)
                os.makedirs(os.path.dirname(full), exist_ok=True)
                with open(full, "w", encoding="utf-8") as f:
                    f.write(content)
            allow = os.path.join(root, "allow.txt")
            if self.allowlist is not None:
                with open(allow, "w", encoding="utf-8") as f:
                    f.write(self.allowlist)
            return mamdr_layering.check_tree(root, allow)


TWO_LAYERS = {"lo": (), "hi": ("lo",)}
THREE_LAYERS = {"lo": (), "mid": ("lo",), "hi": ("mid",)}


class BackEdgeRule(unittest.TestCase):
    def test_downward_include_is_fine(self):
        with module_deps(TWO_LAYERS):
            findings = TempTree({
                "src/lo/a.h": "int a;\n",
                "src/hi/b.cc": '#include "lo/a.h"\n',
            }).check()
        self.assertEqual(rules(findings), [])

    def test_injected_back_edge_fails(self):
        # The acceptance-criteria negative test: an upward include from the
        # bottom layer into the top one must fail the run.
        with module_deps(TWO_LAYERS):
            findings = TempTree({
                "src/hi/b.h": "int b;\n",
                "src/lo/a.cc": '#include "hi/b.h"\n',
            }).check()
        self.assertEqual(rules(findings), ["back-edge"])
        self.assertEqual(findings[0].path, "src/lo/a.cc")
        self.assertEqual(findings[0].line, 1)

    def test_sibling_edge_fails(self):
        deps = {"lo": (), "left": ("lo",), "right": ("lo",)}
        with module_deps(deps):
            findings = TempTree({
                "src/lo/a.h": "int a;\n",
                "src/left/l.h": "int l;\n",
                "src/right/r.cc": '#include "left/l.h"\n',
            }).check()
        self.assertEqual(rules(findings), ["back-edge"])

    def test_transitive_dep_is_fine(self):
        # hi -> mid -> lo is declared; hi including lo directly rides the
        # transitive closure.
        with module_deps(THREE_LAYERS):
            findings = TempTree({
                "src/lo/a.h": "int a;\n",
                "src/hi/c.cc": '#include "lo/a.h"\n',
            }).check()
        self.assertEqual(rules(findings), [])

    def test_intra_module_and_system_includes_ignored(self):
        with module_deps(TWO_LAYERS):
            findings = TempTree({
                "src/lo/a.h": "int a;\n",
                "src/lo/b.cc": ('#include "lo/a.h"\n'
                                "#include <vector>\n"
                                '#include "gtest/gtest.h"\n'),
            }).check()
        self.assertEqual(rules(findings), [])


class AllowlistHandling(unittest.TestCase):
    BACK_EDGE_TREE = {
        "src/hi/b.h": "int b;\n",
        "src/lo/a.cc": '#include "hi/b.h"\n',
    }

    def test_allowlisted_back_edge_passes(self):
        with module_deps(TWO_LAYERS):
            findings = TempTree(
                self.BACK_EDGE_TREE,
                allowlist="# grandfathered\nsrc/lo/a.cc hi/b.h\n").check()
        self.assertEqual(rules(findings), [])

    def test_allowlist_is_per_file(self):
        # Blessing one file's edge must not bless the same include from a
        # different file.
        tree = dict(self.BACK_EDGE_TREE)
        tree["src/lo/c.cc"] = '#include "hi/b.h"\n'
        with module_deps(TWO_LAYERS):
            findings = TempTree(
                tree, allowlist="src/lo/a.cc hi/b.h\n").check()
        self.assertEqual(rules(findings), ["back-edge"])
        self.assertEqual(findings[0].path, "src/lo/c.cc")

    def test_stale_entry_flagged(self):
        with module_deps(TWO_LAYERS):
            findings = TempTree(
                {"src/lo/a.cc": "int a;\n"},
                allowlist="src/lo/a.cc hi/b.h\n").check()
        self.assertEqual(rules(findings), ["stale-allow"])

    def test_malformed_line_flagged(self):
        with module_deps(TWO_LAYERS):
            findings = TempTree(
                {"src/lo/a.cc": "int a;\n"},
                allowlist="src/lo/a.cc\n").check()
        self.assertEqual(rules(findings), ["stale-allow"])

    def test_comments_and_blanks_ignored(self):
        with module_deps(TWO_LAYERS):
            findings = TempTree(
                {"src/lo/a.cc": "int a;\n"},
                allowlist="# a comment\n\n").check()
        self.assertEqual(rules(findings), [])


class UnknownModuleRule(unittest.TestCase):
    def test_undeclared_directory_flagged(self):
        with module_deps(TWO_LAYERS):
            findings = TempTree({
                "src/mystery/a.cc": "int a;\n",
            }).check()
        self.assertEqual(rules(findings), ["unknown-module"])

    def test_undeclared_dep_in_dag_flagged(self):
        with module_deps({"lo": ("ghost",)}):
            findings = TempTree({"src/lo/a.cc": "int a;\n"}).check()
        self.assertEqual(rules(findings), ["unknown-module"])

    def test_include_of_undeclared_module_flagged(self):
        with module_deps(TWO_LAYERS):
            findings = TempTree({
                "src/mystery/m.h": "int m;\n",
                "src/hi/b.cc": '#include "mystery/m.h"\n',
            }).check()
        self.assertIn("unknown-module", rules(findings))


class DagCycleRule(unittest.TestCase):
    def test_cyclic_dag_is_refused(self):
        with module_deps({"a": ("b",), "b": ("a",)}):
            findings = TempTree({"src/a/x.cc": "int x;\n"}).check()
        self.assertEqual(rules(findings), ["dag-cycle"])

    def test_closure_of_acyclic_dag(self):
        closure = mamdr_layering.transitive_closure(THREE_LAYERS)
        self.assertEqual(closure["hi"], {"mid", "lo"})
        self.assertEqual(closure["lo"], set())


class TreeIntegration(unittest.TestCase):
    def _repo_root(self):
        return os.path.dirname(
            os.path.dirname(os.path.abspath(mamdr_layering.__file__)))

    def test_repository_is_clean(self):
        root = self._repo_root()
        allow = os.path.join(root, "tools", "layering_allowlist.txt")
        findings = mamdr_layering.check_tree(root, allow)
        self.assertEqual([f.render() for f in findings], [])

    def test_declared_dag_matches_link_graph(self):
        # Every module with sources under src/ must be declared, and every
        # declared module must exist on disk — MODULE_DEPS and the tree may
        # not drift apart.
        root = self._repo_root()
        src = os.path.join(root, "src")
        on_disk = {
            d for d in os.listdir(src)
            if os.path.isdir(os.path.join(src, d))
        }
        self.assertEqual(on_disk, set(mamdr_layering.MODULE_DEPS))


if __name__ == "__main__":
    sys.exit(unittest.main())
