#!/usr/bin/env python3
"""Merge per-process MAMDR Chrome-trace files into one timeline.

Every traced process (the training client, each shard server) writes its
own Chrome-trace JSON document via obs::TraceRecorder — events carry
``ts`` values rebased to that recorder's private epoch, and the document
trailer records the epoch under ``mamdrMeta.base_us`` (the absolute
obs::MonotonicMicros() reading at Start()). This tool stitches N such
files into a single document chrome://tracing / Perfetto can open, with
every span on one shared timeline:

  1. Each event is lifted to absolute time: ``ts + base_us``.
  2. When the processes do NOT share a monotonic clock (separate machines,
     or separate processes on a platform with per-process epochs), the
     residual per-file offset is estimated from ping RPCs: a client span
     ``ps.client.attempt:ping`` / ``ps.client.rpc:ping`` and the server
     span ``ps.shard.handle:ping`` carrying the *same trace_id* are two
     views of one wire exchange, so the server span must sit inside the
     client span; the median midpoint difference over all such pairs is
     that server file's clock offset. ``--align ping`` applies it,
     ``--align meta`` (default) trusts base_us alone — correct whenever
     all processes run on one machine, which is what ShardGroup does.
  3. Colliding pids between files are renumbered (first file wins) so the
     viewer never folds two processes into one row group.
  4. Events are emitted sorted by timestamp; span identities
     (``args.trace_id`` / ``span_id`` / ``parent_span_id``) pass through
     untouched, so cross-process parent links keep resolving after the
     merge.

Usage:
  tools/mamdr_tracemerge.py -o merged.json client.json shard-*.json

Exit status 0 = merged, 1 = bad input (unparseable file, no events), 2 =
usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Tuple

# Span names forming a ping pair: one wire exchange seen from both ends.
CLIENT_PING_NAMES = ("ps.client.attempt:ping", "ps.client.rpc:ping")
SERVER_PING_NAME = "ps.shard.handle:ping"


class TraceFile:
    """One parsed per-process trace document."""

    def __init__(self, path: str, doc: dict):
        self.path = path
        meta = doc.get("mamdrMeta", {})
        self.base_us = int(meta.get("base_us", 0))
        self.pid = meta.get("pid")
        self.process = meta.get("process", "")
        self.events: List[dict] = list(doc.get("traceEvents", []))
        self.offset_us = 0  # ping-estimated residual clock offset

    def span_events(self) -> List[dict]:
        return [e for e in self.events if e.get("ph") == "X"]

    def absolute_ts(self, event: dict) -> float:
        return float(event["ts"]) + self.base_us + self.offset_us


def load_trace(path: str) -> TraceFile:
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "traceEvents" not in doc:
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents)")
    return TraceFile(path, doc)


def _trace_id(event: dict) -> Optional[str]:
    args = event.get("args")
    if isinstance(args, dict):
        tid = args.get("trace_id")
        if isinstance(tid, str):
            return tid
    return None


def _midpoint(tf: TraceFile, event: dict) -> float:
    return tf.absolute_ts(event) + float(event.get("dur", 0)) / 2.0


def ping_pairs(client: TraceFile,
               server: TraceFile) -> List[Tuple[dict, dict]]:
    """Matched (client span, server span) ping exchanges, by trace_id.

    Client attempt spans are preferred over rpc spans: the attempt is the
    tightest bracket around the wire exchange, so the offset estimate
    carries the least client-side slack.
    """
    by_id: Dict[str, dict] = {}
    for e in client.span_events():
        tid = _trace_id(e)
        if tid is None or e.get("name") not in CLIENT_PING_NAMES:
            continue
        prev = by_id.get(tid)
        if prev is None or (e["name"] == CLIENT_PING_NAMES[0]
                            and prev["name"] != CLIENT_PING_NAMES[0]):
            by_id[tid] = e
    pairs = []
    for e in server.span_events():
        if e.get("name") != SERVER_PING_NAME:
            continue
        tid = _trace_id(e)
        if tid is not None and tid in by_id:
            pairs.append((by_id[tid], e))
    return pairs


def estimate_offset(client: TraceFile, server: TraceFile) -> Optional[int]:
    """Median clock offset to add to `server` timestamps, or None.

    For each ping pair the true server-side work sits inside the client
    span, so with synchronized clocks the midpoints coincide up to network
    asymmetry. The median midpoint difference is therefore the server
    clock's offset from the client clock.
    """
    pairs = ping_pairs(client, server)
    if not pairs:
        return None
    deltas = sorted(_midpoint(client, c) - _midpoint(server, s)
                    for c, s in pairs)
    return int(round(deltas[len(deltas) // 2]))


def assign_pids(files: List[TraceFile]) -> Dict[str, int]:
    """Collision-free pid per file (keyed by path); first claim wins."""
    taken: Dict[int, str] = {}
    out: Dict[str, int] = {}
    next_free = 1
    for tf in files:
        pid = tf.pid if isinstance(tf.pid, int) else None
        if pid is None or pid in taken:
            while next_free in taken:
                next_free += 1
            pid = next_free
        taken[pid] = tf.path
        out[tf.path] = pid
    return out


def merge(files: List[TraceFile], align: str) -> dict:
    """Merge parsed trace files into one Chrome-trace document."""
    if align == "ping":
        # The file holding client ping spans is the reference clock; every
        # other file gets its ping-estimated offset (files without pairs —
        # including the reference itself — keep base_us alignment).
        reference = None
        for tf in files:
            if any(e.get("name") in CLIENT_PING_NAMES
                   for e in tf.span_events()):
                reference = tf
                break
        if reference is not None:
            for tf in files:
                if tf is reference:
                    continue
                offset = estimate_offset(reference, tf)
                if offset is not None:
                    tf.offset_us = offset

    pids = assign_pids(files)
    all_abs = [tf.absolute_ts(e) for tf in files for e in tf.span_events()]
    origin = min(all_abs) if all_abs else 0.0

    merged: List[dict] = []
    for tf in files:
        pid = pids[tf.path]
        for e in tf.events:
            out = dict(e)
            out["pid"] = pid
            if e.get("ph") == "X":
                out["ts"] = int(round(tf.absolute_ts(e) - origin))
            merged.append(out)
    merged.sort(key=lambda e: (0 if e.get("ph") == "M" else 1,
                               e.get("ts", 0), e.get("pid", 0),
                               e.get("tid", 0)))
    return {
        "traceEvents": merged,
        "displayTimeUnit": "ms",
        "mamdrMeta": {
            "merged": True,
            "align": align,
            "sources": [
                {"path": tf.path, "pid": pids[tf.path],
                 "process": tf.process, "base_us": tf.base_us,
                 "offset_us": tf.offset_us}
                for tf in files
            ],
        },
    }


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="per-process trace files (client first is "
                             "conventional but not required)")
    parser.add_argument("-o", "--output", required=True,
                        help="merged trace file to write")
    parser.add_argument("--align", choices=("meta", "ping"), default="meta",
                        help="clock alignment: 'meta' trusts each file's "
                             "mamdrMeta.base_us (one shared monotonic "
                             "clock); 'ping' additionally corrects each "
                             "server file by the median ping-pair offset")
    args = parser.parse_args(argv)

    files: List[TraceFile] = []
    for path in args.inputs:
        try:
            files.append(load_trace(path))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"mamdr_tracemerge: {e}", file=sys.stderr)
            return 1
    if not any(tf.span_events() for tf in files):
        print("mamdr_tracemerge: no span events in any input",
              file=sys.stderr)
        return 1

    doc = merge(files, args.align)
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(doc, f, separators=(",", ":"))
        f.write("\n")
    n = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
    print(f"mamdr_tracemerge: {len(files)} files -> {args.output} "
          f"({n} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
