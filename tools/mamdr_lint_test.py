#!/usr/bin/env python3
"""Unit tests for tools/mamdr_lint.py rule matching.

Each rule gets a positive fixture (must flag) and a negative fixture (must
stay silent), plus suppression-comment and scoping cases.

Run directly (``python3 tools/mamdr_lint_test.py``) or via ctest.
"""

import sys
import unittest

import mamdr_lint


def rules(findings):
    return [f.rule for f in findings]


class KernelAtRule(unittest.TestCase):
    def test_flags_at_in_tensor_kernel(self):
        findings = mamdr_lint.lint_text(
            "src/tensor/tensor_ops.cc",
            "void F(Tensor* t) {\n  t->x = y.at(3);\n}\n")
        self.assertIn("kernel-at", rules(findings))
        self.assertEqual(findings[0].line, 2)

    def test_flags_at_in_nn(self):
        findings = mamdr_lint.lint_text(
            "src/nn/linear.cc", "float v = w.at(0, 1);\n")
        self.assertIn("kernel-at", rules(findings))

    def test_ignores_at_outside_kernel_dirs(self):
        findings = mamdr_lint.lint_text(
            "src/core/mamdr.cc", "float v = w.at(0, 1);\n")
        self.assertNotIn("kernel-at", rules(findings))

    def test_ignores_at_in_comment(self):
        findings = mamdr_lint.lint_text(
            "src/tensor/tensor.cc", "// prefer data() over x.at(i)\n")
        self.assertNotIn("kernel-at", rules(findings))

    def test_suppression_comment(self):
        findings = mamdr_lint.lint_text(
            "src/tensor/tensor.cc",
            "float v = x.at(1);  // mamdr-lint: allow(kernel-at)\n")
        self.assertNotIn("kernel-at", rules(findings))

    def test_method_definition_is_not_a_call(self):
        findings = mamdr_lint.lint_text(
            "src/tensor/tensor.h",
            "#ifndef MAMDR_TENSOR_TENSOR_H_\n"
            "#define MAMDR_TENSOR_TENSOR_H_\n"
            "float& at(int64_t i);\n"
            "#endif  // MAMDR_TENSOR_TENSOR_H_\n")
        self.assertEqual(rules(findings), [])


class KernelDoubleRule(unittest.TestCase):
    def test_flags_double_accumulator_in_tensor(self):
        findings = mamdr_lint.lint_text(
            "src/tensor/tensor_ops.cc", "  double acc = 0.0;\n")
        self.assertEqual(rules(findings), ["kernel-double"])

    def test_flags_long_double(self):
        findings = mamdr_lint.lint_text(
            "src/tensor/tensor_ops.cc", "  long double acc = 0.0;\n")
        self.assertEqual(rules(findings), ["kernel-double"])

    def test_static_cast_to_double_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/tensor/tensor_ops.cc",
            "  acc += static_cast<double>(p[i]);\n")
        self.assertEqual(rules(findings), [])

    def test_double_outside_tensor_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/metrics/auc.cc", "  double acc = 0.0;\n")
        self.assertEqual(rules(findings), [])

    def test_allow_comment(self):
        findings = mamdr_lint.lint_text(
            "src/tensor/tensor_ops.cc",
            "  double acc = 0.0;  // mamdr-lint: allow(kernel-double)\n")
        self.assertEqual(rules(findings), [])


class RawRandRule(unittest.TestCase):
    def test_flags_rand_in_src(self):
        findings = mamdr_lint.lint_text(
            "src/data/synthetic.cc", "  int r = rand() % 10;\n")
        self.assertEqual(rules(findings), ["raw-rand"])

    def test_flags_srand_and_std_rand(self):
        findings = mamdr_lint.lint_text(
            "src/core/maml.cc", "srand(42);\nint x = std::rand();\n")
        self.assertEqual(rules(findings), ["raw-rand", "raw-rand"])

    def test_bench_and_tools_exempt(self):
        for path in ("bench/bench_engine.cpp", "tools/mamdr_datagen.cc"):
            findings = mamdr_lint.lint_text(path, "int r = rand();\n")
            self.assertEqual(rules(findings), [], path)

    def test_identifier_containing_rand_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/common/random.cc", "  float v = my_rand(x); Rng rng(3);\n")
        self.assertEqual(rules(findings), [])


class IostreamPrintRule(unittest.TestCase):
    def test_flags_cout_in_src(self):
        findings = mamdr_lint.lint_text(
            "src/core/framework.cc", '  std::cout << "done";\n')
        self.assertEqual(rules(findings), ["iostream-print"])

    def test_flags_cerr_in_tests(self):
        findings = mamdr_lint.lint_text(
            "tests/foo_test.cc", "  std::cerr << x;\n")
        self.assertEqual(rules(findings), ["iostream-print"])

    def test_tools_exempt(self):
        findings = mamdr_lint.lint_text(
            "tools/mamdr_run.cc", "  std::cout << report;\n")
        self.assertEqual(rules(findings), [])


class RawClockRule(unittest.TestCase):
    def test_flags_steady_clock_in_core(self):
        findings = mamdr_lint.lint_text(
            "src/core/framework.cc",
            "  auto t0 = std::chrono::steady_clock::now();\n")
        self.assertEqual(rules(findings), ["raw-clock"])

    def test_flags_unqualified_use_in_bench(self):
        findings = mamdr_lint.lint_text(
            "bench/bench_kernels.cpp",
            "using std::chrono::steady_clock;\n"
            "auto t = steady_clock::now();\n")
        self.assertEqual(rules(findings), ["raw-clock"])

    def test_obs_and_common_exempt(self):
        for path in ("src/obs/clock.cc", "src/common/retry.cc"):
            findings = mamdr_lint.lint_text(
                path, "  auto t = std::chrono::steady_clock::now();\n")
            self.assertEqual(rules(findings), [], path)

    def test_comment_mention_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/core/framework.cc",
            "// wraps steady_clock::now() behind obs::MonotonicMicros\n")
        self.assertEqual(rules(findings), [])

    def test_allow_comment_rejected_everywhere(self):
        # RAW_CLOCK_COMMENT_ALLOWED is empty since the metrics server's
        # deadline became a CondVar::WaitFor: the allow comment works
        # nowhere, including the formerly blessed file.
        for path in ("src/serve/metrics_server.cc",
                     "src/ps/fault_injector.cc", "src/serve/recommender.cc",
                     "tests/serve_test.cc"):
            findings = mamdr_lint.lint_text(
                path,
                "  auto t = steady_clock::now();"
                "  // mamdr-lint: allow(raw-clock)\n")
            self.assertEqual(rules(findings), ["raw-clock"], path)

    def test_other_clocks_not_flagged(self):
        findings = mamdr_lint.lint_text(
            "src/core/framework.cc",
            "  auto t = std::chrono::system_clock::now();\n")
        self.assertEqual(rules(findings), [])


class NetRawClockRule(unittest.TestCase):
    def test_flags_every_spelling_in_ps_net(self):
        for snippet in (
                "auto t = std::chrono::steady_clock::now();\n",
                "auto t = std::chrono::system_clock::now();\n",
                "auto t = std::chrono::high_resolution_clock::now();\n",
                "clock_gettime(CLOCK_MONOTONIC, &ts);\n",
                "gettimeofday(&tv, nullptr);\n"):
            findings = mamdr_lint.lint_text(
                "src/ps/net/shard_server.cc", snippet)
            self.assertIn("net-raw-clock", rules(findings), snippet)

    def test_steady_clock_in_ps_net_flags_both_rules(self):
        # steady_clock::now() in ps/net trips the general funnel rule and
        # the stricter net rule; both fire so neither weakening goes
        # unnoticed.
        findings = mamdr_lint.lint_text(
            "src/ps/net/net_ps_client.cc",
            "  auto t = std::chrono::steady_clock::now();\n")
        self.assertIn("net-raw-clock", rules(findings))
        self.assertIn("raw-clock", rules(findings))

    def test_allow_comment_is_not_honored(self):
        findings = mamdr_lint.lint_text(
            "src/ps/net/wire.cc",
            "  gettimeofday(&tv, nullptr);"
            "  // mamdr-lint: allow(net-raw-clock)\n")
        self.assertEqual(rules(findings), ["net-raw-clock"])

    def test_outside_ps_net_not_covered(self):
        # system_clock in src/core is (only) the general rule's business —
        # which deliberately does not match it.
        findings = mamdr_lint.lint_text(
            "src/core/framework.cc",
            "  auto t = std::chrono::system_clock::now();\n")
        self.assertNotIn("net-raw-clock", rules(findings))

    def test_comment_mention_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/ps/net/shard_server.cc",
            "// never call gettimeofday( here; use obs::MonotonicMicros\n")
        self.assertEqual(rules(findings), [])

    def test_monotonic_micros_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/ps/net/shard_server.cc",
            "  const int64_t now = obs::MonotonicMicros();\n")
        self.assertEqual(rules(findings), [])


class NativeMutexRule(unittest.TestCase):
    def test_flags_std_mutex_member(self):
        findings = mamdr_lint.lint_text(
            "src/serve/batched_scorer.h",
            "#ifndef MAMDR_SERVE_BATCHED_SCORER_H_\n"
            "#define MAMDR_SERVE_BATCHED_SCORER_H_\n"
            "  std::mutex mu_;\n"
            "#endif  // MAMDR_SERVE_BATCHED_SCORER_H_\n")
        self.assertEqual(rules(findings), ["native-mutex"])
        self.assertEqual(findings[0].line, 3)

    def test_flags_lock_guard_and_unique_lock(self):
        findings = mamdr_lint.lint_text(
            "src/core/framework.cc",
            "  std::lock_guard<std::mutex> a(m);\n"
            "  std::unique_lock<std::mutex> b(m);\n")
        self.assertEqual(rules(findings), ["native-mutex", "native-mutex"])

    def test_flags_condition_variable_and_variants(self):
        for decl in ("std::condition_variable cv;",
                     "std::condition_variable_any cv;",
                     "std::shared_mutex sm;",
                     "std::recursive_mutex rm;",
                     "std::scoped_lock l(m);"):
            findings = mamdr_lint.lint_text(
                "src/ps/worker.cc", f"  {decl}\n")
            self.assertEqual(rules(findings), ["native-mutex"], decl)

    def test_wrapper_header_exempt(self):
        findings = mamdr_lint.lint_text(
            "src/common/mutex.h",
            "#ifndef MAMDR_COMMON_MUTEX_H_\n"
            "#define MAMDR_COMMON_MUTEX_H_\n"
            "  std::mutex mu_;\n"
            "  std::condition_variable cv_;\n"
            "#endif  // MAMDR_COMMON_MUTEX_H_\n")
        self.assertEqual(rules(findings), [])

    def test_allow_comment(self):
        findings = mamdr_lint.lint_text(
            "src/common/lockdep.cc",
            "  std::mutex mu;"
            "  // mamdr-lint: allow(native-mutex) lockdep internals\n")
        self.assertEqual(rules(findings), [])

    def test_tests_and_bench_also_covered(self):
        # Unlike raw-rand, the rule has no tools/bench exemption: a raw
        # mutex in a test deadlocks just as invisibly.
        for path in ("tests/foo_test.cc", "bench/bench_engine.cpp",
                     "tools/mamdr_run.cc"):
            findings = mamdr_lint.lint_text(path, "  std::mutex m;\n")
            self.assertEqual(rules(findings), ["native-mutex"], path)

    def test_comment_mention_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/serve/recommender.cc",
            "// replaced the std::mutex with mamdr::Mutex\n")
        self.assertEqual(rules(findings), [])

    def test_mamdr_wrappers_are_fine(self):
        findings = mamdr_lint.lint_text(
            "src/serve/recommender.cc",
            "  Mutex mu;\n  MutexLock lock(&mu);\n  CondVar cv;\n")
        self.assertEqual(rules(findings), [])


class RawSocketRule(unittest.TestCase):
    def test_flags_each_banned_call(self):
        for call in ("::socket(AF_INET, SOCK_STREAM, 0)",
                     "::connect(fd, addr, len)",
                     "::bind(fd, addr, len)",
                     "::listen(fd, 16)",
                     "::accept(fd, nullptr, nullptr)",
                     "::recv(fd, buf, n, 0)",
                     "::send(fd, buf, n, 0)",
                     "::recvmsg(fd, &msg, 0)",
                     "::sendmsg(fd, &msg, MSG_NOSIGNAL)",
                     "::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &o, so)",
                     "::shutdown(fd, SHUT_RDWR)"):
            findings = mamdr_lint.lint_text(
                "src/ps/net/shard_server.cc", f"  int n = {call};\n")
            self.assertEqual(rules(findings), ["raw-socket"], call)

    def test_pool_helpers_are_not_exempt(self):
        # The connection pool lives next to the transport but is NOT the
        # wrapper file: its liveness probe and redial must go through the
        # cnet helpers (ProbeConnAlive, ConnectLoopback), never the raw
        # calls — even the exact probe idiom net.cc itself uses.
        findings = mamdr_lint.lint_text(
            "src/ps/net/connection_pool.cc",
            "  char b;\n"
            "  const ssize_t n = ::recv(fd, &b, 1, MSG_PEEK | MSG_DONTWAIT);\n")
        self.assertEqual(rules(findings), ["raw-socket"])

    def test_pool_wrapper_calls_are_fine(self):
        findings = mamdr_lint.lint_text(
            "src/ps/net/connection_pool.cc",
            "  if (!cnet::ProbeConnAlive(slot.fd.get())) stale = true;\n"
            "  auto conn = cnet::ConnectLoopback(port);\n"
            "  cnet::ScopedFd fd(conn.value());\n"
            "  cnet::ShutdownFd(fd.get());\n")
        self.assertEqual(rules(findings), [])

    def test_wrapper_file_exempt(self):
        findings = mamdr_lint.lint_text(
            "src/common/net.cc",
            "  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n"
            "  ::shutdown(fd, SHUT_RDWR);\n")
        self.assertEqual(rules(findings), [])

    def test_qualified_names_are_fine(self):
        # std::bind / a namespace's own connect/send must not match; only
        # the global-scope `::` qualification counts.
        findings = mamdr_lint.lint_text(
            "src/ps/net/net_ps_client.cc",
            "  auto f = std::bind(&F, this);\n"
            "  net::SendAll(fd, p, n);\n"
            "  auto r = mamdr::net::ConnectLoopback(port);\n"
            "  client.connect(port);\n")
        self.assertEqual(rules(findings), [])

    def test_tests_and_tools_also_covered(self):
        for path in ("tests/foo_test.cc", "tools/mamdr_run.cc",
                     "bench/bench_ps.cpp"):
            findings = mamdr_lint.lint_text(
                path, "  ::connect(fd, addr, len);\n")
            self.assertEqual(rules(findings), ["raw-socket"], path)

    def test_allow_comment(self):
        findings = mamdr_lint.lint_text(
            "tests/raw_client_test.cc",
            "  ::send(fd, p, n, 0);  "
            "// mamdr-lint: allow(raw-socket) deliberate raw client\n")
        self.assertEqual(rules(findings), [])

    def test_comment_mention_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/ps/net/wire.cc",
            "// bans direct ::socket()/::connect() calls outside net.cc\n")
        self.assertEqual(rules(findings), [])


class HeaderGuardRule(unittest.TestCase):
    GOOD = ("#ifndef MAMDR_COMMON_FLAGS_H_\n"
            "#define MAMDR_COMMON_FLAGS_H_\n"
            "int x;\n"
            "#endif  // MAMDR_COMMON_FLAGS_H_\n")

    def test_correct_guard_passes(self):
        findings = mamdr_lint.lint_text("src/common/flags.h", self.GOOD)
        self.assertEqual(rules(findings), [])

    def test_src_prefix_is_dropped(self):
        self.assertEqual(mamdr_lint.expected_guard("src/ps/worker.h"),
                         "MAMDR_PS_WORKER_H_")
        self.assertEqual(mamdr_lint.expected_guard("tests/test_util.h"),
                         "MAMDR_TESTS_TEST_UTIL_H_")
        self.assertEqual(mamdr_lint.expected_guard("bench/bench_util.h"),
                         "MAMDR_BENCH_BENCH_UTIL_H_")

    def test_wrong_guard_flagged(self):
        text = self.GOOD.replace("MAMDR_COMMON_FLAGS_H_", "FLAGS_H")
        findings = mamdr_lint.lint_text("src/common/flags.h", text)
        self.assertEqual(rules(findings), ["header-guard"])

    def test_missing_guard_flagged(self):
        findings = mamdr_lint.lint_text("src/common/flags.h", "int x;\n")
        self.assertEqual(rules(findings), ["header-guard"])

    def test_pragma_once_flagged(self):
        findings = mamdr_lint.lint_text(
            "src/common/flags.h", "#pragma once\nint x;\n")
        self.assertEqual(rules(findings), ["header-guard"])

    def test_define_mismatch_flagged(self):
        text = ("#ifndef MAMDR_COMMON_FLAGS_H_\n"
                "#define MAMDR_COMMON_FLAGS_WRONG_\n"
                "#endif\n")
        findings = mamdr_lint.lint_text("src/common/flags.h", text)
        self.assertEqual(rules(findings), ["header-guard"])

    def test_cc_files_have_no_guard_requirement(self):
        findings = mamdr_lint.lint_text("src/common/flags.cc", "int x;\n")
        self.assertEqual(rules(findings), [])


class IgnoredStatusRule(unittest.TestCase):
    def test_flags_bare_call_in_ps(self):
        findings = mamdr_lint.lint_text(
            "src/ps/worker.cc", "  client_->PullDense(&out);\n")
        self.assertEqual(rules(findings), ["ignored-status"])

    def test_flags_namespace_qualified_call_in_checkpoint(self):
        findings = mamdr_lint.lint_text(
            "src/checkpoint/checkpoint.cc",
            "  checkpoint::SaveTensors(named, path);\n")
        self.assertEqual(rules(findings), ["ignored-status"])

    def test_checked_call_is_fine(self):
        for stmt in (
                "  Status s = client_->PullDense(&out);\n",
                "  return client_->PullDense(&out);\n",
                "  MAMDR_RETURN_IF_ERROR(client_->PullDense(&out));\n",
                "  if (!worker->RunDnEpoch().ok()) return;\n",
        ):
            findings = mamdr_lint.lint_text("src/ps/worker.cc", stmt)
            self.assertEqual(rules(findings), [], stmt)

    def test_continuation_line_is_not_a_statement(self):
        # The wrapped argument of a multi-line macro/assignment starts with
        # the op name but has unbalanced parens — must not be flagged.
        findings = mamdr_lint.lint_text(
            "src/ps/distributed_mamdr.cc",
            "  MAMDR_ASSIGN_OR_RETURN(auto named,\n"
            "                         checkpoint::LoadTensors(path));\n")
        self.assertEqual(rules(findings), [])

    def test_outside_status_dirs_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/core/mamdr.cc", "  mamdr.Train();\n")
        self.assertEqual(rules(findings), [])

    def test_allow_comment(self):
        findings = mamdr_lint.lint_text(
            "src/ps/ps_client.cc",
            "  server_->PullDense(out);"
            "  // mamdr-lint: allow(ignored-status)\n")
        self.assertEqual(rules(findings), [])

    def test_declaration_is_not_a_call(self):
        findings = mamdr_lint.lint_text(
            "src/ps/worker.cc", "Status Worker::RunDnEpoch() {\n")
        self.assertEqual(rules(findings), [])


class HotPathLockRule(unittest.TestCase):
    MARKER = "// mamdr-lint: hot-path — request code is lock-free\n"

    def test_flags_lock_in_marked_file(self):
        findings = mamdr_lint.lint_text(
            "src/serve/recommender.cc",
            self.MARKER + "void F() {\n  MutexLock lock(&mu_);\n}\n")
        self.assertEqual(rules(findings), ["hot-path-lock"])
        self.assertEqual(findings[0].line, 3)

    def test_unmarked_file_is_untouched(self):
        findings = mamdr_lint.lint_text(
            "src/serve/recommender.cc",
            "void F() {\n  MutexLock lock(&mu_);\n}\n")
        self.assertEqual(rules(findings), [])

    def test_allow_comment(self):
        findings = mamdr_lint.lint_text(
            "src/serve/recommender.cc",
            self.MARKER
            + "  MutexLock lock(&mu_);"
            "  // mamdr-lint: allow(hot-path-lock) setup path\n")
        self.assertEqual(rules(findings), [])

    def test_marker_works_anywhere_in_tree(self):
        # The rule is opt-in by marker, not by directory: a marked core
        # file gets the same scrutiny as serve/.
        findings = mamdr_lint.lint_text(
            "src/core/framework.cc",
            self.MARKER + "  MutexLock lock(&mu_);\n")
        self.assertEqual(rules(findings), ["hot-path-lock"])

    def test_comment_mention_is_fine(self):
        findings = mamdr_lint.lint_text(
            "src/serve/recommender.cc",
            self.MARKER + "// replaced the per-request MutexLock here\n")
        self.assertEqual(rules(findings), [])

    def test_each_unallowed_lock_is_flagged(self):
        findings = mamdr_lint.lint_text(
            "src/serve/recommender.cc",
            self.MARKER
            + "  MutexLock a(&mu_);  // mamdr-lint: allow(hot-path-lock)\n"
            "  MutexLock b(&mu_);\n"
            "  MutexLock c(&mu_);\n")
        self.assertEqual(rules(findings),
                         ["hot-path-lock", "hot-path-lock"])


class TreeIntegration(unittest.TestCase):
    def test_repository_is_clean(self):
        root = mamdr_lint.os.path.dirname(
            mamdr_lint.os.path.dirname(
                mamdr_lint.os.path.abspath(mamdr_lint.__file__)))
        findings = []
        for rel in mamdr_lint.discover_files(root):
            findings.extend(mamdr_lint.lint_file(root, rel))
        self.assertEqual([f.render() for f in findings], [])

    def test_discover_skips_non_cpp(self):
        root = mamdr_lint.os.path.dirname(
            mamdr_lint.os.path.dirname(
                mamdr_lint.os.path.abspath(mamdr_lint.__file__)))
        for rel in mamdr_lint.discover_files(root):
            self.assertTrue(rel.endswith(mamdr_lint.CPP_EXTENSIONS), rel)


if __name__ == "__main__":
    sys.exit(unittest.main())
