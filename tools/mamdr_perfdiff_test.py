#!/usr/bin/env python3
"""Unit tests for tools/mamdr_perfdiff.py.

Covers metric classification, regression-ratio direction, entry matching,
the warn/fail thresholds, and the end-to-end exit codes (including the
acceptance case: a synthetic 2x regression must exit non-zero).

Run directly (``python3 tools/mamdr_perfdiff_test.py``) or via ctest.
"""

import json
import os
import sys
import tempfile
import unittest

import mamdr_perfdiff


def serving_doc(qps=1000.0, p99_us=400.0):
    return {
        "bench": "serving",
        "requests_per_sweep": 256,
        "entries": [{
            "threads": 1, "domains": 10, "requests": 256,
            "qps": qps, "mean_us": 200.0, "p50_us": 180.0,
            "p95_us": 350.0, "p99_us": p99_us,
        }],
    }


def sweep_doc(qps_by_threads, mode="per_request"):
    """A serving doc with one entry per (threads, qps) pair."""
    return {
        "bench": "serving",
        "entries": [{
            "mode": mode, "threads": t, "domains": 10, "requests": 256,
            "qps": q,
        } for t, q in qps_by_threads],
    }


def kernels_doc(ms=2.0, gflops=30.0):
    return {
        "bench": "kernels",
        "entries": [{
            "kernel": "matmul", "variant": "parallel",
            "m": 512, "k": 256, "n": 256, "threads": 4,
            "ms": ms, "gflops": gflops,
        }],
    }


class MetricClassification(unittest.TestCase):
    def test_metric_names(self):
        for name in ("ms", "gflops", "qps", "mean_us", "p50_us", "p99_us",
                     "total_ms", "scaling_efficiency"):
            self.assertTrue(mamdr_perfdiff.is_metric(name), name)
        for name in ("threads", "kernel", "variant", "m", "requests",
                     "domains", "mode"):
            self.assertFalse(mamdr_perfdiff.is_metric(name), name)

    def test_scaling_efficiency_is_higher_better(self):
        # Halving efficiency is a 2x regression; if scaling_efficiency were
        # ever treated as an identity field instead, entries would stop
        # matching their baseline and every diff would report missing
        # coverage — this test pins the metric classification.
        self.assertAlmostEqual(
            mamdr_perfdiff.regression_ratio(
                "scaling_efficiency", 1.0, 0.5), 2.0)

    def test_ratio_direction(self):
        # Lower-better: doubling the time is 2x worse.
        self.assertAlmostEqual(
            mamdr_perfdiff.regression_ratio("ms", 2.0, 4.0), 2.0)
        # Higher-better: halving the throughput is 2x worse.
        self.assertAlmostEqual(
            mamdr_perfdiff.regression_ratio("qps", 1000.0, 500.0), 2.0)
        # Improvements come out below 1 in both directions.
        self.assertLess(
            mamdr_perfdiff.regression_ratio("p99_us", 400.0, 100.0), 1.0)
        self.assertLess(
            mamdr_perfdiff.regression_ratio("gflops", 10.0, 40.0), 1.0)

    def test_zero_values_never_regress(self):
        self.assertEqual(
            mamdr_perfdiff.regression_ratio("ms", 0.0, 5.0), 1.0)
        self.assertEqual(
            mamdr_perfdiff.regression_ratio("qps", 100.0, 0.0), 1.0)


class DiffLogic(unittest.TestCase):
    def test_identical_is_clean(self):
        base = serving_doc()["entries"]
        warnings, failures = mamdr_perfdiff.diff(base, base, 1.25, 2.0)
        self.assertEqual(warnings, [])
        self.assertEqual(failures, [])

    def test_mild_regression_warns_only(self):
        base = serving_doc(qps=1000.0)["entries"]
        cur = serving_doc(qps=700.0)["entries"]  # 1.43x worse
        warnings, failures = mamdr_perfdiff.diff(base, cur, 1.25, 2.0)
        self.assertEqual(len(warnings), 1)
        self.assertEqual(failures, [])

    def test_hard_regression_fails(self):
        base = kernels_doc(ms=2.0, gflops=30.0)["entries"]
        cur = kernels_doc(ms=5.0, gflops=12.0)["entries"]  # 2.5x worse
        warnings, failures = mamdr_perfdiff.diff(base, cur, 1.25, 2.0)
        self.assertEqual(len(failures), 2)  # both ms and gflops

    def test_missing_entry_fails(self):
        base = kernels_doc()["entries"]
        warnings, failures = mamdr_perfdiff.diff(
            base, serving_doc()["entries"], 1.25, 2.0)
        self.assertEqual(len(failures), 1)
        self.assertIn("missing entry", failures[0])

    def test_missing_metric_fails(self):
        base = serving_doc()["entries"]
        cur = [dict(base[0])]
        del cur[0]["p99_us"]
        warnings, failures = mamdr_perfdiff.diff(base, cur, 1.25, 2.0)
        self.assertEqual(len(failures), 1)
        self.assertIn("missing metric p99_us", failures[0])

    def test_extra_current_entries_are_ignored(self):
        # New coverage in current must not fail against an older baseline.
        base = serving_doc()["entries"]
        cur = base + kernels_doc()["entries"]
        warnings, failures = mamdr_perfdiff.diff(base, cur, 1.25, 2.0)
        self.assertEqual(failures, [])


class ThreadScaling(unittest.TestCase):
    def test_monotone_sweep_is_clean(self):
        cur = sweep_doc([(1, 1000.0), (2, 1990.0), (4, 3900.0)])["entries"]
        self.assertEqual(
            mamdr_perfdiff.thread_scaling_failures(cur, 0.95), [])

    def test_flat_sweep_is_clean(self):
        # On a single-core machine perfect scaling is flat QPS.
        cur = sweep_doc([(1, 1000.0), (2, 990.0), (8, 960.0)])["entries"]
        self.assertEqual(
            mamdr_perfdiff.thread_scaling_failures(cur, 0.95), [])

    def test_negative_scaling_fails(self):
        # The seed repo's actual failure shape: QPS drops as threads grow.
        cur = sweep_doc([(1, 18863.0), (2, 17203.0), (4, 16953.0)])["entries"]
        failures = mamdr_perfdiff.thread_scaling_failures(cur, 0.95)
        self.assertEqual(len(failures), 2)  # both 2 and 4 are < 0.95x
        self.assertIn("negative thread scaling", failures[0])

    def test_groups_split_by_identity(self):
        # A slow mode must not be compared against a fast mode's qps@1.
        cur = (sweep_doc([(1, 1000.0), (4, 990.0)], mode="per_request")
               ["entries"]
               + sweep_doc([(1, 400.0), (4, 395.0)], mode="batched")
               ["entries"])
        self.assertEqual(
            mamdr_perfdiff.thread_scaling_failures(cur, 0.95), [])

    def test_single_thread_count_is_skipped(self):
        cur = sweep_doc([(4, 100.0)])["entries"]
        self.assertEqual(
            mamdr_perfdiff.thread_scaling_failures(cur, 0.95), [])

    def test_entries_without_qps_or_threads_are_skipped(self):
        cur = [{"kernel": "matmul", "ms": 2.0},
               {"mode": "batched", "threads": 2, "qps": 50.0}]
        self.assertEqual(
            mamdr_perfdiff.thread_scaling_failures(cur, 0.95), [])

    def test_gate_is_self_referential_not_baseline_relative(self):
        # Even when baseline and current are identical (no diff failures),
        # a negatively-scaling current file must still fail: a baseline
        # recorded with the bug does not grandfather it in.
        doc = sweep_doc([(1, 1000.0), (4, 800.0)])
        base = doc["entries"]
        warnings, failures = mamdr_perfdiff.diff(base, base, 1.25, 2.0)
        self.assertEqual(failures, [])
        self.assertEqual(
            len(mamdr_perfdiff.thread_scaling_failures(base, 0.95)), 1)


class EndToEnd(unittest.TestCase):
    def _write(self, doc):
        f = tempfile.NamedTemporaryFile(
            "w", suffix=".json", delete=False)
        json.dump(doc, f)
        f.close()
        self.addCleanup(os.unlink, f.name)
        return f.name

    def test_clean_run_exits_zero(self):
        p = self._write(serving_doc())
        self.assertEqual(mamdr_perfdiff.main([p, p]), 0)

    def test_synthetic_2x_regression_exits_nonzero(self):
        base = self._write(serving_doc(qps=1000.0, p99_us=400.0))
        cur = self._write(serving_doc(qps=450.0, p99_us=900.0))
        self.assertEqual(mamdr_perfdiff.main([base, cur]), 1)

    def test_warning_exits_zero_unless_strict(self):
        base = self._write(serving_doc(qps=1000.0))
        cur = self._write(serving_doc(qps=700.0))
        self.assertEqual(mamdr_perfdiff.main([base, cur]), 0)
        self.assertEqual(mamdr_perfdiff.main([base, cur, "--strict"]), 1)

    def test_bad_thresholds_are_usage_errors(self):
        p = self._write(serving_doc())
        self.assertEqual(
            mamdr_perfdiff.main([p, p, "--warn-ratio", "3.0"]), 2)
        self.assertEqual(
            mamdr_perfdiff.main([p, p, "--min-thread-scaling", "1.5"]), 2)

    def test_negative_scaling_exits_nonzero(self):
        doc = sweep_doc([(1, 1000.0), (2, 900.0), (4, 850.0)])
        p = self._write(doc)
        self.assertEqual(mamdr_perfdiff.main([p, p]), 1)
        self.assertEqual(
            mamdr_perfdiff.main([p, p, "--no-thread-scaling-check"]), 0)
        # A looser floor admits the same file.
        self.assertEqual(
            mamdr_perfdiff.main([p, p, "--min-thread-scaling", "0.8"]), 0)

    def test_missing_entries_list_is_schema_error(self):
        p = self._write({"bench": "serving"})
        with self.assertRaises(SystemExit):
            mamdr_perfdiff.load_entries(p)


if __name__ == "__main__":
    sys.exit(unittest.main())
