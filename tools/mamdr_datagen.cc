// mamdr_datagen: generate MDR benchmark datasets to CSV.
//
// Examples:
//   mamdr_datagen --dataset amazon13 --out ./amazon13_csv
//   mamdr_datagen --dataset taobao30 --scale 0.5 --seed 99 --out ./t30
//   mamdr_datagen --custom 8 --positives 500 --conflict 0.8 --out ./mine
#include <cstdio>

#include "common/flags.h"
#include "data/io.h"
#include "data/stats.h"
#include "data/synthetic.h"

using namespace mamdr;

int main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  FlagParser flags = std::move(parsed).value();
  const std::string name = flags.GetString("dataset", "taobao10");
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 17));
  const std::string out = flags.GetString("out", "");
  const int64_t custom = flags.GetInt("custom", 0);
  const int64_t positives = flags.GetInt("positives", 400);
  const double conflict = flags.GetDouble("conflict", 0.6);
  const double ctr = flags.GetDouble("ctr-ratio", 0.3);

  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: %s --dataset NAME|--custom N --out DIR "
                 "[--scale X --seed N --positives N --conflict X "
                 "--ctr-ratio X]\n",
                 argv[0]);
    return 2;
  }

  data::SyntheticConfig config;
  if (custom > 0) {
    config.name = "custom-" + std::to_string(custom);
    config.seed = seed;
    for (int64_t d = 0; d < custom; ++d) {
      config.domains.push_back({"D" + std::to_string(d + 1),
                                static_cast<int64_t>(positives * scale), ctr,
                                conflict});
    }
  } else if (name == "amazon6") {
    config = data::Amazon6Like(scale, seed);
  } else if (name == "amazon13") {
    config = data::Amazon13Like(scale, seed);
  } else if (name == "taobao10") {
    config = data::TaobaoLike(10, scale, seed);
  } else if (name == "taobao20") {
    config = data::TaobaoLike(20, scale, seed);
  } else if (name == "taobao30") {
    config = data::TaobaoLike(30, scale, seed);
  } else if (name == "industry") {
    config = data::IndustryLike(48, scale, seed);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
    return 2;
  }

  auto ds = data::Generate(config);
  if (!ds.ok()) {
    std::fprintf(stderr, "generate: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  Status s = data::SaveCsv(ds.value(), out);
  if (!s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", data::FormatStats(data::ComputeStats(ds.value()))
                          .c_str());
  std::printf("written to %s\n", out.c_str());
  return 0;
}
