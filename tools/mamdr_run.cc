// mamdr_run: the experiment driver CLI.
//
// Examples:
//   mamdr_run --dataset taobao10 --model MLP --framework MAMDR --epochs 10
//   mamdr_run --dataset amazon13 --scale 0.5 --model STAR --framework DN
//   mamdr_run --dataset taobao10 --framework MAMDR --save-model m.ckpt
//             --save-dataset ./data_out --topk-eval
//   mamdr_run --load-dataset ./data_out --framework Alternate
//   mamdr_run --list
#include <cstdio>

#include "checkpoint/checkpoint.h"
#include "core/early_stopper.h"
#include "common/flags.h"
#include "common/string_util.h"
#include "core/framework_registry.h"
#include "data/io.h"
#include "metrics/gauc.h"
#include "metrics/logloss.h"
#include "obs/telemetry.h"
#include "data/stats.h"
#include "data/synthetic.h"
#include "models/registry.h"
#include "serve/metrics_server.h"
#include "serve/recommender.h"

using namespace mamdr;

namespace {

void PrintUsage(const char* prog) {
  std::printf(
      "usage: %s [flags]\n"
      "  --dataset NAME     amazon6|amazon13|taobao10|taobao20|taobao30|"
      "industry (default taobao10)\n"
      "  --scale X          dataset scale multiplier (default 1.0)\n"
      "  --data-seed N      dataset generation seed (default 17)\n"
      "  --load-dataset DIR load a CSV dataset instead of generating\n"
      "  --save-dataset DIR save the dataset as CSV\n"
      "  --model NAME       model structure (default MLP); --list to see\n"
      "  --framework NAME   learning framework (default MAMDR)\n"
      "  --epochs N         training epochs (default 10)\n"
      "  --batch-size N     mini-batch size (default 256)\n"
      "  --inner-lr X       alpha (default 1e-3)\n"
      "  --outer-lr X       beta (default 0.5)\n"
      "  --dr-lr X          gamma (default 0.5)\n"
      "  --k N              DR sample count (default 5)\n"
      "  --inner-opt NAME   adam|sgd|adagrad (default adam)\n"
      "  --seed N           model/training seed (default 7)\n"
      "  --patience N       stop when val AUC stalls for N epochs "
      "(0 = off)\n"
      "  --kernel-threads N kernel pool size (0 = hardware_concurrency, "
      "1 = serial)\n"
      "  --metrics-out PATH write deterministic metrics/telemetry JSON "
      "(schema mamdr.metrics.v1) at exit\n"
      "  --metrics-port N   serve live /metrics (Prometheus text) and "
      "/healthz on 127.0.0.1:N while running (0 = off, default)\n"
      "  --trace-out PATH   write chrome://tracing span JSON at exit\n"
      "  --probe-conflict   record per-epoch cross-domain gradient conflict "
      "(needs --metrics-out)\n"
      "  --save-model PATH  write a parameter checkpoint after training\n"
      "  --topk-eval        also report HitRate@10 / NDCG@10 per domain\n"
      "  --stats            print dataset statistics before training\n"
      "  --list             list models and frameworks, then exit\n",
      prog);
}

Result<data::MultiDomainDataset> BuildDataset(const FlagParser& flags) {
  if (flags.Has("load-dataset")) {
    return data::LoadCsv(flags.GetString("load-dataset", ""));
  }
  const std::string name = flags.GetString("dataset", "taobao10");
  const double scale = flags.GetDouble("scale", 1.0);
  const uint64_t seed =
      static_cast<uint64_t>(flags.GetInt("data-seed", 17));
  data::SyntheticConfig config;
  if (name == "amazon6") {
    config = data::Amazon6Like(scale, seed);
  } else if (name == "amazon13") {
    config = data::Amazon13Like(scale, seed);
  } else if (name == "taobao10") {
    config = data::TaobaoLike(10, scale, seed);
  } else if (name == "taobao20") {
    config = data::TaobaoLike(20, scale, seed);
  } else if (name == "taobao30") {
    config = data::TaobaoLike(30, scale, seed);
  } else if (name == "industry") {
    config = data::IndustryLike(48, scale, seed);
  } else {
    return Status::InvalidArgument("unknown dataset '" + name + "'");
  }
  return data::Generate(config);
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    PrintUsage(argv[0]);
    return 2;
  }
  FlagParser flags = std::move(parsed).value();
  if (flags.GetBool("help", false)) {
    PrintUsage(argv[0]);
    return 0;
  }
  if (Status s = ApplyGlobalFlags(flags); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  if (flags.GetBool("list", false)) {
    std::printf("models:     %s\n",
                Join(models::KnownModels(), ", ").c_str());
    std::printf("frameworks: %s\n",
                Join(core::KnownFrameworks(), ", ").c_str());
    return 0;
  }

  auto ds_result = BuildDataset(flags);
  if (!ds_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 ds_result.status().ToString().c_str());
    return 1;
  }
  data::MultiDomainDataset ds = std::move(ds_result).value();
  if (flags.GetBool("stats", false)) {
    std::printf("%s\n", data::FormatStats(data::ComputeStats(ds)).c_str());
  }
  if (flags.Has("save-dataset")) {
    Status s = data::SaveCsv(ds, flags.GetString("save-dataset", ""));
    if (!s.ok()) {
      std::fprintf(stderr, "save-dataset: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};
  mc.expert_hidden = {64};
  mc.tower_hidden = {16};
  mc.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  core::TrainConfig tc;
  tc.epochs = flags.GetInt("epochs", 10);
  tc.batch_size = flags.GetInt("batch-size", 256);
  tc.inner_lr = static_cast<float>(flags.GetDouble("inner-lr", 1e-3));
  tc.outer_lr = static_cast<float>(flags.GetDouble("outer-lr", 0.5));
  tc.dr_lr = static_cast<float>(flags.GetDouble("dr-lr", 0.5));
  tc.dr_sample_k = flags.GetInt("k", 5);
  tc.inner_optimizer = flags.GetString("inner-opt", "adam");
  tc.seed = mc.seed + 1;
  const int64_t patience = flags.GetInt("patience", 0);

  const std::string model_name = flags.GetString("model", "MLP");
  const std::string fw_name = flags.GetString("framework", "MAMDR");
  const bool topk_eval = flags.GetBool("topk-eval", false);
  const std::string save_model = flags.GetString("save-model", "");
  auto metrics_port = flags.GetIntChecked("metrics-port", 0);
  if (!metrics_port.ok()) {
    std::fprintf(stderr, "%s\n", metrics_port.status().ToString().c_str());
    return 2;
  }

  const auto unknown = flags.Unrecognized();
  if (!unknown.empty()) {
    std::fprintf(stderr, "unknown flags: %s\n", Join(unknown, ", ").c_str());
    PrintUsage(argv[0]);
    return 2;
  }

  serve::MetricsServer metrics_server;
  if (metrics_port.value() > 0) {
    Status s = metrics_server.Start(static_cast<int>(metrics_port.value()));
    if (!s.ok()) {
      std::fprintf(stderr, "metrics-port: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("metrics endpoint: http://127.0.0.1:%d/metrics\n",
                metrics_server.port());
  }

  Rng rng(mc.seed);
  auto model_result = models::CreateModel(model_name, mc, &rng);
  if (!model_result.ok()) {
    std::fprintf(stderr, "model: %s\n",
                 model_result.status().ToString().c_str());
    return 1;
  }
  auto model = std::move(model_result).value();
  auto fw_result = core::CreateFramework(fw_name, model.get(), &ds, tc);
  if (!fw_result.ok()) {
    std::fprintf(stderr, "framework: %s\n",
                 fw_result.status().ToString().c_str());
    return 1;
  }
  auto fw = std::move(fw_result).value();

  std::printf("training %s + %s on %s (%lld domains, %lld train samples)\n",
              model_name.c_str(), fw_name.c_str(), ds.name().c_str(),
              static_cast<long long>(ds.num_domains()),
              static_cast<long long>(ds.TotalTrain()));
  core::EarlyStopper stopper(patience > 0 ? patience : tc.epochs);
  for (int64_t e = 1; e <= tc.epochs; ++e) {
    fw->TrainEpoch();
    const auto val = fw->Evaluate(metrics::Split::kVal);
    double avg_val = 0;
    for (double a : val) avg_val += a;
    avg_val /= static_cast<double>(val.size());
    std::printf("epoch %3lld/%lld  val AUC %.4f  test AUC %.4f\n",
                static_cast<long long>(e),
                static_cast<long long>(tc.epochs), avg_val,
                fw->AverageTestAuc());
    stopper.Observe(avg_val, *model);
    if (patience > 0 && stopper.ShouldStop()) {
      std::printf("early stop: no val improvement for %lld epochs "
                  "(best epoch %lld, val %.4f)\n",
                  static_cast<long long>(patience),
                  static_cast<long long>(stopper.best_epoch()),
                  stopper.best_metric());
      break;
    }
  }

  std::printf("\nper-domain test AUC / LogLoss:\n");
  const auto aucs = fw->EvaluateTest();
  auto scorer = fw->Scorer();
  for (int64_t d = 0; d < ds.num_domains(); ++d) {
    data::Batch test_batch = data::Batcher::All(ds.domain(d).test);
    const auto domain_scores = scorer(test_batch, d);
    const double ll = metrics::LogLoss(domain_scores, test_batch.labels);
    const double gauc =
        metrics::GAuc(test_batch.users, domain_scores, test_batch.labels);
    std::printf("  %-28s auc %.4f  gauc %.4f  logloss %.4f\n",
                ds.domain(d).name.c_str(), aucs[static_cast<size_t>(d)],
                gauc, ll);
  }

  if (topk_eval) {
    std::printf("\ntop-K evaluation (HitRate@10 / NDCG@10, 50 negatives):\n");
    serve::Recommender rec(model.get(), fw->Scorer());
    Rng eval_rng(99);
    for (int64_t d = 0; d < ds.num_domains(); ++d) {
      const auto report =
          serve::EvaluateTopK(rec, ds, d, 10, 50, &eval_rng);
      std::printf("  %-28s hit %.4f  ndcg %.4f  (%lld cases)\n",
                  ds.domain(d).name.c_str(), report.hit_rate, report.ndcg,
                  static_cast<long long>(report.num_cases));
    }
  }

  if (!save_model.empty()) {
    Status s = checkpoint::SaveModule(*model, save_model);
    if (!s.ok()) {
      std::fprintf(stderr, "save-model: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nmodel checkpoint written to %s\n", save_model.c_str());
  }

  if (std::string obs_error; !obs::WriteConfiguredOutputs(&obs_error)) {
    std::fprintf(stderr, "observability output: %s\n", obs_error.c_str());
    return 1;
  }
  metrics_server.Stop();
  return 0;
}
