#!/usr/bin/env python3
"""Static module-layering checker for the MAMDR tree.

Enforces the include-level module DAG over ``src/``: every ``#include
"other_module/..."`` directive must follow a declared dependency edge (or
its transitive closure). The DAG is declared in MODULE_DEPS below and must
match the link graph in src/CMakeLists.txt; back-edges and cycles are
build-order bugs waiting to happen (and with static archives they hide
until someone reorders the link line).

What is checked, per C++ file under src/:

  back-edge       an ``#include "m2/..."`` from module m1 where m2 is not
                  in the transitive closure of MODULE_DEPS[m1]. The only
                  escape is a per-edge entry in the checked-in allowlist
                  (tools/layering_allowlist.txt) — there is deliberately no
                  in-source allow comment, so every exception is reviewed
                  at the tool level, not slipped into a diff.
  unknown-module  a src/ subdirectory that MODULE_DEPS does not declare, or
                  an include of one. New modules must be registered here
                  (and in src/CMakeLists.txt) before code can include them.
  dag-cycle       MODULE_DEPS itself contains a cycle. This guards edits to
                  this file: the checker refuses to bless a cyclic "DAG".
  stale-allow     an allowlist entry whose file no longer exists, no longer
                  contains the include, or whose edge became legal. Stale
                  entries are errors so the grandfathered set only shrinks.

Allowlist format (tools/layering_allowlist.txt): one ``<file> <include>``
pair per line, '#' comments and blank lines ignored. File paths are
repo-relative with forward slashes; includes are the exact quoted path.

Usage:
  tools/mamdr_layering.py [--root DIR] [--allowlist FILE]

Exit status 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Dict, List, NamedTuple, Set, Tuple

# Direct dependencies of each module under src/. Edges flow strictly
# downward; the checker closes them transitively, so list only the
# immediate layer below. Keep in sync with the target_link_libraries graph
# in src/CMakeLists.txt — the ASCII diagram lives in docs/ARCHITECTURE.md
# ("Concurrency analysis" section).
MODULE_DEPS: Dict[str, Tuple[str, ...]] = {
    "obs": (),  # bottom: std-only (grandfathered common/ header exceptions)
    "common": ("obs",),
    "tensor": ("common",),
    "data": ("common",),
    "autograd": ("tensor",),
    "nn": ("autograd",),
    "optim": ("autograd",),
    "metrics": ("data", "tensor"),
    "models": ("nn", "data"),
    "core": ("models", "metrics", "optim"),
    "checkpoint": ("core",),
    "serve": ("models", "metrics"),
    # ps -> serve: each ShardServer can expose its own Prometheus endpoint
    # (serve::MetricsServer). Acyclic — serve never includes ps.
    "ps": ("core", "checkpoint", "serve"),
}

CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


class Finding(NamedTuple):
    path: str  # repo-relative, forward slashes; '' = tree-level finding
    line: int  # 1-based; 0 = whole file / tree
    rule: str
    message: str

    def render(self) -> str:
        where = self.path if self.path else "tools/mamdr_layering.py"
        return f"{where}:{self.line}: [{self.rule}] {self.message}"


def transitive_closure(
        deps: Dict[str, Tuple[str, ...]]) -> Dict[str, Set[str]]:
    closure: Dict[str, Set[str]] = {}

    def visit(mod: str, stack: Tuple[str, ...]) -> Set[str]:
        if mod in closure:
            return closure[mod]
        if mod in stack:
            cycle = stack[stack.index(mod):] + (mod,)
            raise ValueError(" -> ".join(cycle))
        reach: Set[str] = set()
        for dep in deps.get(mod, ()):
            reach.add(dep)
            reach |= visit(dep, stack + (mod,))
        closure[mod] = reach
        return reach

    for mod in deps:
        visit(mod, ())
    return closure


def parse_allowlist(path: str) -> Tuple[List[Tuple[str, str]], List[Finding]]:
    entries: List[Tuple[str, str]] = []
    findings: List[Finding] = []
    if not os.path.exists(path):
        return entries, findings
    with open(path, "r", encoding="utf-8") as f:
        for i, raw in enumerate(f, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 2:
                findings.append(
                    Finding(os.path.basename(path), i, "stale-allow",
                            f"malformed allowlist line: {raw.strip()!r} "
                            "(expected '<file> <include>')"))
                continue
            entries.append((parts[0], parts[1]))
    return entries, findings


def discover_sources(src_root: str) -> List[str]:
    out: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for name in sorted(filenames):
            if name.endswith(CPP_EXTENSIONS):
                rel = os.path.relpath(os.path.join(dirpath, name), src_root)
                out.append(rel.replace(os.sep, "/"))
    return sorted(out)


def check_tree(root: str, allowlist_path: str) -> List[Finding]:
    """Check src/ under `root`; returns all findings (empty = clean)."""
    findings: List[Finding] = []

    try:
        closure = transitive_closure(MODULE_DEPS)
    except ValueError as e:
        return [Finding("", 0, "dag-cycle",
                        f"MODULE_DEPS contains a cycle: {e}")]
    for mod, deps in MODULE_DEPS.items():
        for dep in deps:
            if dep not in MODULE_DEPS:
                findings.append(
                    Finding("", 0, "unknown-module",
                            f"MODULE_DEPS[{mod!r}] names undeclared "
                            f"module {dep!r}"))

    allow_entries, allow_findings = parse_allowlist(allowlist_path)
    findings.extend(allow_findings)
    allowed: Set[Tuple[str, str]] = set(allow_entries)
    used_allows: Set[Tuple[str, str]] = set()

    src_root = os.path.join(root, "src")
    for rel in discover_sources(src_root):
        mod = rel.split("/", 1)[0]
        src_rel = "src/" + rel
        if "/" not in rel:
            continue  # file directly under src/ belongs to no module
        if mod not in MODULE_DEPS:
            findings.append(
                Finding(src_rel, 0, "unknown-module",
                        f"module '{mod}' is not declared in MODULE_DEPS"))
            continue
        full = os.path.join(src_root, rel)
        try:
            with open(full, "r", encoding="utf-8", errors="replace") as f:
                lines = f.read().splitlines()
        except OSError as e:
            findings.append(Finding(src_rel, 0, "io-error", str(e)))
            continue
        for i, line in enumerate(lines, start=1):
            m = INCLUDE_RE.match(line)
            if not m:
                continue
            inc = m.group(1)
            target = inc.split("/", 1)[0]
            if target == mod or "/" not in inc:
                continue
            if not os.path.isdir(os.path.join(src_root, target)):
                continue  # not a src/ module (e.g. gtest/gtest.h)
            if target not in MODULE_DEPS:
                findings.append(
                    Finding(src_rel, i, "unknown-module",
                            f"include of undeclared module '{target}'"))
                continue
            if target in closure[mod]:
                continue
            if (src_rel, inc) in allowed:
                used_allows.add((src_rel, inc))
                continue
            findings.append(
                Finding(src_rel, i, "back-edge",
                        f"module '{mod}' may not include '{target}' "
                        f"(declared deps: "
                        f"{sorted(closure[mod]) or ['<none>']}); add the "
                        "edge to MODULE_DEPS or the allowlist — both are "
                        "reviewed changes"))

    for entry in sorted(allowed - used_allows):
        findings.append(
            Finding(entry[0], 0, "stale-allow",
                    f"allowlist entry for include {entry[1]!r} is unused; "
                    "delete it from tools/layering_allowlist.txt"))
    return findings


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist file (default: "
                             "tools/layering_allowlist.txt under root)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"mamdr_layering: no src/ under root: {root}", file=sys.stderr)
        return 2
    allowlist = args.allowlist or os.path.join(root, "tools",
                                               "layering_allowlist.txt")

    findings = check_tree(root, allowlist)
    for f in findings:
        print(f.render())
    if findings:
        print(f"mamdr_layering: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("mamdr_layering: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
