#!/usr/bin/env python3
"""Compare two BENCH_*.json files and flag performance regressions.

Both files must follow the bench JSON convention: a top-level ``entries``
list of flat objects, where identity fields (strings and counts such as
``kernel``, ``variant``, ``m``/``k``/``n``, ``threads``) describe *what* was
measured and metric fields describe *how fast* it was. Metrics are
recognized by name:

  lower is better:   ``ms`` and any field ending in ``_ms`` or ``_us``
  higher is better:  ``gflops``, ``qps``, ``scaling_efficiency``

For each baseline entry the matching current entry is located by its
identity fields; a missing entry or metric is always a failure (a bench
must not silently drop coverage). Each metric is reduced to a regression
ratio that is > 1 when current is worse:

  lower-better:   current / baseline
  higher-better:  baseline / current

Ratios above ``--warn-ratio`` (default 1.25) print a WARNING; above
``--fail-ratio`` (default 2.0) they fail the run. Warnings alone exit 0 so
noisy shared CI runners don't flap the gate — pass ``--strict`` to turn
warnings into failures (e.g. on a quiet dedicated machine).

Thread-scaling gate: entries in the CURRENT file that carry both a
``threads`` identity field and a ``qps`` metric are additionally checked
for monotonicity — within each group of entries identical except for
``threads``, ``qps`` at every thread count must be at least
``--min-thread-scaling`` (default 0.95) times ``qps`` at the group's
lowest thread count. A serving stack whose throughput *drops* when given
more threads has a contention bug, and this is the gate that catches it
regardless of what the baseline file says (a baseline recorded with the
bug must not grandfather it in). ``--no-thread-scaling-check`` disables
the gate. Groups with a single thread count are skipped.

Usage:
  tools/mamdr_perfdiff.py BASELINE.json CURRENT.json
      [--warn-ratio X] [--fail-ratio X] [--strict]
      [--min-thread-scaling X] [--no-thread-scaling-check]

Exit status: 0 = OK (possibly with warnings), 1 = regression or missing
coverage, 2 = usage/schema error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

LOWER_BETTER_SUFFIXES = ("_ms", "_us")
LOWER_BETTER_NAMES = ("ms",)
HIGHER_BETTER_NAMES = ("gflops", "qps", "scaling_efficiency")


def is_metric(name: str) -> bool:
    return (name in LOWER_BETTER_NAMES or name in HIGHER_BETTER_NAMES
            or name.endswith(LOWER_BETTER_SUFFIXES))


def regression_ratio(name: str, base: float, cur: float) -> float:
    """> 1 means current is worse than baseline; 0/negative values (a
    too-coarse timer, a failed measurement) compare as no-regression."""
    if base <= 0.0 or cur <= 0.0:
        return 1.0
    if name in HIGHER_BETTER_NAMES:
        return base / cur
    return cur / base


def entry_key(entry: dict) -> Tuple:
    """Identity of a bench entry: every non-metric field, order-insensitive."""
    return tuple(sorted(
        (k, v) for k, v in entry.items() if not is_metric(k)))


def load_entries(path: str) -> List[dict]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise SystemExit(f"mamdr_perfdiff: cannot read {path}: {e}")
    entries = doc.get("entries")
    if not isinstance(entries, list) or not entries:
        raise SystemExit(f"mamdr_perfdiff: {path} has no 'entries' list")
    return entries


def format_key(key: Tuple) -> str:
    return " ".join(f"{k}={v}" for k, v in key)


def diff(baseline: List[dict], current: List[dict], warn_ratio: float,
         fail_ratio: float) -> Tuple[List[str], List[str]]:
    """Returns (warnings, failures) as printable lines."""
    warnings: List[str] = []
    failures: List[str] = []
    cur_by_key: Dict[Tuple, dict] = {entry_key(e): e for e in current}
    for base in baseline:
        key = entry_key(base)
        cur = cur_by_key.get(key)
        if cur is None:
            failures.append(f"missing entry: {format_key(key)}")
            continue
        for name, base_val in base.items():
            if not is_metric(name):
                continue
            if name not in cur:
                failures.append(f"missing metric {name}: {format_key(key)}")
                continue
            ratio = regression_ratio(name, float(base_val), float(cur[name]))
            line = (f"{name} {float(base_val):.2f} -> {float(cur[name]):.2f} "
                    f"({ratio:.2f}x worse): {format_key(key)}")
            if ratio > fail_ratio:
                failures.append(line)
            elif ratio > warn_ratio:
                warnings.append(line)
    return warnings, failures


def thread_scaling_failures(current: List[dict],
                            min_scaling: float) -> List[str]:
    """QPS monotonicity across a thread sweep, on the CURRENT file only.

    Groups entries by identity-minus-``threads`` and requires
    ``qps@N >= min_scaling * qps@base`` for every N, where base is the
    group's lowest thread count. Self-referential on purpose: negative
    thread scaling is a bug in absolute terms, not relative to a baseline
    that may itself have been recorded with the bug.
    """
    failures: List[str] = []
    groups: Dict[Tuple, List[dict]] = {}
    for entry in current:
        if "qps" not in entry or "threads" not in entry:
            continue
        key = tuple(sorted((k, v) for k, v in entry.items()
                           if not is_metric(k) and k != "threads"))
        groups.setdefault(key, []).append(entry)
    for key, entries in sorted(groups.items()):
        if len(entries) < 2:
            continue
        entries.sort(key=lambda e: float(e["threads"]))
        base = entries[0]
        base_qps = float(base["qps"])
        if base_qps <= 0.0:
            continue
        floor = min_scaling * base_qps
        for entry in entries[1:]:
            qps = float(entry["qps"])
            if qps < floor:
                failures.append(
                    f"negative thread scaling: qps {qps:.2f} @ "
                    f"threads={entry['threads']} < {min_scaling:.2f} * "
                    f"{base_qps:.2f} @ threads={base['threads']}: "
                    f"{format_key(key)}")
    return failures


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--warn-ratio", type=float, default=1.25,
                        help="warn when worse by this factor (default 1.25)")
    parser.add_argument("--fail-ratio", type=float, default=2.0,
                        help="fail when worse by this factor (default 2.0)")
    parser.add_argument("--strict", action="store_true",
                        help="treat warnings as failures")
    parser.add_argument("--min-thread-scaling", type=float, default=0.95,
                        help="fail when qps@N drops below this fraction of "
                             "qps at the lowest thread count (default 0.95)")
    parser.add_argument("--no-thread-scaling-check", action="store_true",
                        help="skip the qps-vs-threads monotonicity gate")
    args = parser.parse_args(argv)
    if not (1.0 <= args.warn_ratio <= args.fail_ratio):
        print("mamdr_perfdiff: need 1.0 <= --warn-ratio <= --fail-ratio",
              file=sys.stderr)
        return 2
    if not (0.0 < args.min_thread_scaling <= 1.0):
        print("mamdr_perfdiff: need 0.0 < --min-thread-scaling <= 1.0",
              file=sys.stderr)
        return 2

    baseline = load_entries(args.baseline)
    current = load_entries(args.current)
    warnings, failures = diff(baseline, current, args.warn_ratio,
                              args.fail_ratio)
    if not args.no_thread_scaling_check:
        failures.extend(
            thread_scaling_failures(current, args.min_thread_scaling))

    for line in warnings:
        print(f"WARNING: {line}")
    for line in failures:
        print(f"FAIL: {line}")
    if failures or (args.strict and warnings):
        print(f"mamdr_perfdiff: {len(failures)} failure(s), "
              f"{len(warnings)} warning(s)", file=sys.stderr)
        return 1
    print(f"mamdr_perfdiff: OK ({len(baseline)} entries, "
          f"{len(warnings)} warning(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
