#!/usr/bin/env python3
"""Project-specific lint rules for the MAMDR tree.

Rules (suppress a finding by appending ``// mamdr-lint: allow(<rule>)`` to
the offending line):

  kernel-at       ``.at(`` in src/tensor or src/nn. Bounds-checked element
                  access in kernel code hides O(n) checks in hot loops; use
                  raw ``data()`` pointers (the public kernel entry points
                  validate shapes once).
  kernel-double   a ``double`` variable/parameter declaration in src/tensor.
                  Kernels accumulate in float32 so blocked/parallel paths
                  stay bit-identical to the serial contract; widening an
                  accumulator silently changes results across code paths.
                  Intentional high-precision serial reductions carry the
                  allow comment.
  raw-rand        ``rand()`` / ``srand()`` outside tools/ and bench/. All
                  library randomness flows through mamdr::Rng so a seed
                  reproduces identical runs on every platform.
  iostream-print  ``std::cout`` / ``std::cerr`` outside tools/ and bench/.
                  Library code reports through MAMDR_LOG / Status, never by
                  printing.
  raw-clock       ``std::chrono::steady_clock::now()`` (or any
                  ``steady_clock::now()``) outside src/obs and src/common.
                  All timing flows through obs::MonotonicMicros()/
                  MonotonicSeconds() so the golden-run determinism contract
                  has a single clock to reason about and instrumentation is
                  greppable in one place. Unlike the other rules the allow
                  comment is honored ONLY in the files listed in
                  RAW_CLOCK_COMMENT_ALLOWED (currently empty — the last
                  exception, the metrics server's slow-client deadline,
                  became a CondVar::WaitFor timed wait); everywhere else
                  the rule is absolute.
  net-raw-clock   any raw clock read — ``steady_clock``/``system_clock``/
                  ``high_resolution_clock`` ``::now()``, ``clock_gettime``,
                  ``gettimeofday`` — inside src/ps/net. Stricter than
                  raw-clock (more spellings) and absolute: no allow comment
                  is honored, ever. The networked PS is the one subsystem
                  where timestamps cross process boundaries (span start
                  times, queue-wait attribution, trace files that
                  mamdr_tracemerge.py aligns across shards); a single
                  off-funnel clock read there silently breaks the merged
                  timeline rather than one local measurement.
  native-mutex    ``std::mutex`` / ``std::lock_guard`` / ``std::unique_lock``
                  (or any other <mutex>/<condition_variable> primitive)
                  outside common/mutex.h. All locking flows through the
                  annotated mamdr::Mutex/MutexLock/CondVar wrappers so
                  clang -Wthread-safety sees every acquisition and the
                  runtime lockdep validator (common/lockdep.h) sees every
                  lock in its order graph — a raw std::mutex is invisible
                  to both. The lockdep implementation itself must not
                  recurse into its own instrumentation and carries the
                  allow comment.
  hot-path-lock   a ``MutexLock`` acquisition in a file that carries the
                  ``// mamdr-lint: hot-path`` marker comment. Marked files
                  hold steady-state request code whose scaling contract is
                  "no locks after setup" — the serving rebuild exists
                  because one per-request MutexLock flattened the thread
                  sweep. Setup/teardown paths (constructors, SetCandidates,
                  the slow path of a copy-on-write publish) acquire locks
                  legitimately and carry ``allow(hot-path-lock)`` on the
                  acquisition line; a lock without the comment is presumed
                  to be on the request path. Files without the marker are
                  untouched by this rule, so it costs nothing until a file
                  opts in.
  raw-socket      a direct global-scope POSIX socket call (``::socket``,
                  ``::connect``, ``::bind``, ``::listen``, ``::accept``,
                  ``::recv``, ``::send``, ``::setsockopt``, ``::shutdown``)
                  outside src/common/net.cc. Every byte that crosses a
                  socket must go through the common/net helpers — that is
                  what makes the EINTR/SIGPIPE handling, the kUnavailable/
                  kInvalidArgument error mapping, and the frame codec's
                  corruption guarantees hold everywhere, and what makes the
                  ps/net fault proxy a faithful model of all real traffic.
                  A deliberate raw client (e.g. a test probing pre-frame
                  behavior) carries the allow comment.
  header-guard    headers must use the canonical include guard
                  ``MAMDR_<PATH>_H_`` (path relative to the repo root with a
                  leading ``src/`` dropped), not ``#pragma once``.
  ignored-status  a statement-position call to a known Status/Result-returning
                  PS or checkpoint op (PullDense, PushRowDeltas, RunDnEpoch,
                  LoadTensors, ...) in src/ps or src/checkpoint whose value is
                  dropped on the floor. ``[[nodiscard]]`` catches the direct
                  form at compile time, but not calls through an interface
                  that predates the annotation or void wrappers; the linter
                  closes that gap. Legitimate drops (e.g. forwarding to the
                  void ParameterServer methods) carry the allow comment.
                  Heuristic: only flags single-line statements (the call
                  starts the line, parentheses balance, line ends with ;) so
                  continuation lines of MAMDR_RETURN_IF_ERROR/assignments
                  never false-positive.

Usage:
  tools/mamdr_lint.py [--root DIR] [files...]

With no file arguments, lints every C++ source under src/, tests/, bench/,
tools/, and examples/. Exit status 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import List, NamedTuple, Optional

LINT_DIRS = ("src", "tests", "bench", "tools", "examples")
CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

ALLOW_RE = re.compile(r"//\s*mamdr-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")
AT_CALL_RE = re.compile(r"\.at\s*\(")
DOUBLE_DECL_RE = re.compile(r"\b(?:long\s+)?double\s+[A-Za-z_]\w*")
RAW_RAND_RE = re.compile(r"\b(?:std::)?s?rand\s*\(")
IOSTREAM_PRINT_RE = re.compile(r"\bstd::c(?:out|err)\b")
RAW_CLOCK_RE = re.compile(r"\bsteady_clock\s*::\s*now\s*\(")
# The only files where `// mamdr-lint: allow(raw-clock)` works. Raw clock
# reads fragment the timing funnel, so an allow comment alone is not enough
# — the file itself must be on this list (i.e. the exception was reviewed
# at the linter level, not slipped into a diff). Currently empty: the
# mechanism stays so the next genuine exception is a one-line reviewed
# change here instead of a new rule carve-out.
RAW_CLOCK_COMMENT_ALLOWED = ()
# src/ps/net only: every clock spelling that could leak wall/monotonic time
# around the obs funnel. Timestamps from this subsystem end up in per-shard
# trace files that mamdr_tracemerge.py aligns into one timeline, so the
# rule is absolute — there is no allow comment and no file exemption.
NET_RAW_CLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
    r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(")
# Raw standard-library locking primitives. Everything in <mutex> and
# <condition_variable> that code would name directly; common/mutex.h is
# exempt (it wraps these), everyone else goes through mamdr::Mutex.
NATIVE_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|timed_|recursive_timed_|shared_)?mutex\b"
    r"|\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bstd\s*::\s*condition_variable(?:_any)?\b")
NATIVE_MUTEX_EXEMPT = ("src/common/mutex.h",)
# Opt-in marker: a file containing this comment declares its steady-state
# code lock-free; every MutexLock in it must justify itself with an allow.
HOT_PATH_MARKER_RE = re.compile(r"//\s*mamdr-lint:\s*hot-path\b")
# Global-scope-qualified POSIX socket calls. The lookbehind keeps qualified
# names (std::bind, net::SendAll, obj.connect) from matching: only a `::`
# that begins the qualification — i.e. the global namespace — counts.
RAW_SOCKET_RE = re.compile(
    r"(?<![\w:])::\s*(?:socket|connect|bind|listen|accept|recv|send"
    r"|recvmsg|sendmsg|setsockopt|shutdown)\s*\(")
RAW_SOCKET_EXEMPT = ("src/common/net.cc",)
MUTEX_LOCK_RE = re.compile(r"\bMutexLock\b")
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)")

# Status/Result-returning operations of the PS-Worker runtime and the
# checkpoint layer. Extend this list when adding new fallible ops.
STATUS_FUNCS = (
    "PullDense", "PullRows", "PullFullTable", "PushDenseDelta",
    "PushRowDeltas", "RunDnEpoch", "RunDnEpochOn", "RunDrPhase",
    "RestoreFromPs", "Train", "TrainEpoch", "SaveCheckpoint",
    "RestoreFromCheckpoint", "SaveTensors", "LoadTensors", "SaveModule",
    "LoadModule", "SaveStore", "LoadStore",
)
# A line that *starts* with a (possibly qualified) call to one of the ops:
# `client_->PullDense(...)`, `checkpoint::SaveTensors(...)`, `Train(...)`.
# Lines starting with `return`, a type name, `if (...`, or a macro never
# match because the anchor is at the first non-space character.
IGNORED_STATUS_RE = re.compile(
    r"^\s*(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*(?:"
    + "|".join(STATUS_FUNCS) + r")\s*\(")


class Finding(NamedTuple):
    path: str  # repo-relative, forward slashes
    line: int  # 1-based; 0 = whole file
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _allowed_rules(line: str) -> List[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return []
    return [r.strip() for r in m.group(1).split(",")]


def _strip_line_comment(line: str) -> str:
    """Drop // comments so prose about forbidden constructs doesn't trip."""
    return LINE_COMMENT_RE.sub("", line)


def expected_guard(rel_path: str) -> str:
    """Canonical include guard for a header at repo-relative `rel_path`."""
    parts = rel_path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return f"MAMDR_{stem.upper()}_"


def _in_dir(rel_path: str, *dirs: str) -> bool:
    return any(rel_path.startswith(d + "/") for d in dirs)


def _check_header_guard(rel_path: str, lines: List[str]) -> List[Finding]:
    findings: List[Finding] = []
    guard = expected_guard(rel_path)
    ifndef: Optional[str] = None
    define: Optional[str] = None
    ifndef_line = 0
    for i, line in enumerate(lines, start=1):
        if PRAGMA_ONCE_RE.match(line):
            if "header-guard" not in _allowed_rules(line):
                findings.append(
                    Finding(rel_path, i, "header-guard",
                            f"use the include guard {guard} instead of "
                            "#pragma once"))
            return findings
        m = IFNDEF_RE.match(line)
        if m and ifndef is None:
            ifndef = m.group(1)
            ifndef_line = i
            continue
        m = DEFINE_RE.match(line)
        if m and ifndef is not None and define is None:
            define = m.group(1)
            break
    if ifndef is None:
        findings.append(
            Finding(rel_path, 1, "header-guard",
                    f"missing include guard (expected {guard})"))
        return findings
    if ifndef != guard:
        findings.append(
            Finding(rel_path, ifndef_line, "header-guard",
                    f"include guard is {ifndef}, expected {guard}"))
    elif define != guard:
        findings.append(
            Finding(rel_path, ifndef_line, "header-guard",
                    f"#ifndef {guard} is not followed by #define {guard}"))
    return findings


def lint_text(rel_path: str, text: str) -> List[Finding]:
    """Lint one file's contents; `rel_path` is repo-relative with '/'."""
    rel_path = rel_path.replace("\\", "/")
    lines = text.splitlines()
    findings: List[Finding] = []

    hot_kernel_file = _in_dir(rel_path, "src/tensor", "src/nn")
    kernel_float_file = _in_dir(rel_path, "src/tensor")
    library_file = not _in_dir(rel_path, "tools", "bench")
    status_file = _in_dir(rel_path, "src/ps", "src/checkpoint")
    clock_blessed_file = _in_dir(rel_path, "src/obs", "src/common")
    clock_comment_ok = rel_path in RAW_CLOCK_COMMENT_ALLOWED
    net_clock_file = _in_dir(rel_path, "src/ps/net")
    mutex_wrapper_file = rel_path in NATIVE_MUTEX_EXEMPT
    socket_wrapper_file = rel_path in RAW_SOCKET_EXEMPT
    hot_path_file = HOT_PATH_MARKER_RE.search(text) is not None

    for i, raw_line in enumerate(lines, start=1):
        allowed = _allowed_rules(raw_line)
        line = _strip_line_comment(raw_line)

        if hot_kernel_file and "kernel-at" not in allowed:
            if AT_CALL_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "kernel-at",
                            "bounds-checked .at() in kernel code; use raw "
                            "data() pointers"))
        if kernel_float_file and "kernel-double" not in allowed:
            if DOUBLE_DECL_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "kernel-double",
                            "double accumulator in a float32 kernel changes "
                            "results across code paths"))
        if library_file and "raw-rand" not in allowed:
            if RAW_RAND_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "raw-rand",
                            "use mamdr::Rng instead of rand()/srand() for "
                            "reproducible runs"))
        if library_file and "iostream-print" not in allowed:
            if IOSTREAM_PRINT_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "iostream-print",
                            "library code must not print to std::cout/cerr; "
                            "use MAMDR_LOG or return Status"))
        if not clock_blessed_file and not (clock_comment_ok
                                           and "raw-clock" in allowed):
            if RAW_CLOCK_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "raw-clock",
                            "read time via obs::MonotonicMicros()/"
                            "MonotonicSeconds(), not steady_clock::now()"))
        if net_clock_file:
            # Deliberately ignores `allowed`: this rule has no escape hatch.
            if NET_RAW_CLOCK_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "net-raw-clock",
                            "raw clock read in src/ps/net; all networked-PS "
                            "timing must flow through obs::MonotonicMicros() "
                            "so merged traces share one timeline (no allow "
                            "comment honored)"))
        if not mutex_wrapper_file and "native-mutex" not in allowed:
            if NATIVE_MUTEX_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "native-mutex",
                            "raw std locking primitive is invisible to "
                            "-Wthread-safety and lockdep; use mamdr::Mutex/"
                            "MutexLock/CondVar from common/mutex.h"))
        if not socket_wrapper_file and "raw-socket" not in allowed:
            if RAW_SOCKET_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "raw-socket",
                            "raw POSIX socket call outside common/net.cc; "
                            "use the net:: helpers so error mapping and "
                            "framing guarantees hold"))
        if hot_path_file and "hot-path-lock" not in allowed:
            if MUTEX_LOCK_RE.search(line):
                findings.append(
                    Finding(rel_path, i, "hot-path-lock",
                            "MutexLock in a hot-path file; move the lock off "
                            "the request path or justify with "
                            "// mamdr-lint: allow(hot-path-lock)"))
        if status_file and "ignored-status" not in allowed:
            stripped = line.rstrip()
            # Statement-position only: the call opens the line, the line is a
            # complete statement (balanced parens, trailing ';'). Continuation
            # lines inside MAMDR_RETURN_IF_ERROR(...)/assignments are
            # unbalanced and skipped.
            if (IGNORED_STATUS_RE.match(stripped)
                    and stripped.endswith(";")
                    and stripped.count("(") == stripped.count(")")):
                findings.append(
                    Finding(rel_path, i, "ignored-status",
                            "result of a Status-returning op is discarded; "
                            "check it or use MAMDR_RETURN_IF_ERROR"))

    if rel_path.endswith((".h", ".hpp")):
        findings.extend(_check_header_guard(rel_path, lines))
    return findings


def lint_file(root: str, rel_path: str) -> List[Finding]:
    full = os.path.join(root, rel_path)
    try:
        with open(full, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        return [Finding(rel_path, 0, "io-error", str(e))]
    return lint_text(rel_path, text)


def discover_files(root: str) -> List[str]:
    out: List[str] = []
    for top in LINT_DIRS:
        for dirpath, _dirnames, filenames in os.walk(os.path.join(root, top)):
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    out.append(rel.replace(os.sep, "/"))
    return sorted(out)


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("files", nargs="*",
                        help="repo-relative files to lint (default: all)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    if not os.path.isdir(root):
        print(f"mamdr_lint: no such root: {root}", file=sys.stderr)
        return 2

    files = args.files or discover_files(root)
    findings: List[Finding] = []
    for rel in files:
        findings.extend(lint_file(root, rel))

    for f in findings:
        print(f.render())
    if findings:
        print(f"mamdr_lint: {len(findings)} finding(s) in "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    print(f"mamdr_lint: OK ({len(files)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
