#!/usr/bin/env python3
"""Unit tests for tools/mamdr_tracemerge.py.

Fixtures are built in-memory in the exact shape obs::TraceRecorder::Json()
emits: ``traceEvents`` with ``ph:"X"`` spans whose ``ts`` is rebased to the
recorder's epoch, an optional ``ph:"M"`` process_name metadata event, and a
``mamdrMeta`` trailer carrying that epoch (``base_us``), the pid, and the
process name.

Run directly (``python3 tools/mamdr_tracemerge_test.py``) or via ctest.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

import mamdr_tracemerge as tm


def span(name, ts, dur, tid=0, trace_id=None, span_id=None, parent=None,
         **tags):
    e = {"name": name, "cat": "t", "ph": "X", "ts": ts, "dur": dur,
         "pid": 1, "tid": tid}
    args = {}
    if trace_id is not None:
        args["trace_id"] = trace_id
        args["span_id"] = span_id or "0x1"
        if parent is not None:
            args["parent_span_id"] = parent
    args.update(tags)
    if args:
        e["args"] = args
    return e


def doc(events, base_us, pid, process):
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "mamdrMeta": {"base_us": base_us, "pid": pid,
                          "process": process}}


def tracefile(events, base_us=0, pid=1, process="p", path="mem"):
    return tm.TraceFile(path, doc(events, base_us, pid, process))


def spans_of(merged):
    return [e for e in merged["traceEvents"] if e.get("ph") == "X"]


class MetaAlignment(unittest.TestCase):
    def test_base_us_lifts_to_shared_timeline(self):
        # Client epoch 1000, shard epoch 1500: a shard span at local ts 0
        # really started 500us after a client span at local ts 0.
        client = tracefile([span("a", 0, 100)], base_us=1000, path="c")
        shard = tracefile([span("b", 0, 100)], base_us=1500, path="s")
        merged = tm.merge([client, shard], align="meta")
        by_name = {e["name"]: e for e in spans_of(merged)}
        self.assertEqual(by_name["a"]["ts"], 0)
        self.assertEqual(by_name["b"]["ts"], 500)

    def test_origin_is_earliest_span(self):
        a = tracefile([span("a", 40, 5)], base_us=100, path="a")
        b = tracefile([span("b", 0, 5)], base_us=90, path="b")
        merged = tm.merge([a, b], align="meta")
        by_name = {e["name"]: e for e in spans_of(merged)}
        self.assertEqual(by_name["b"]["ts"], 0)    # 90 is the origin
        self.assertEqual(by_name["a"]["ts"], 50)   # 140 - 90

    def test_span_identity_args_pass_through(self):
        f = tracefile(
            [span("x", 0, 1, trace_id="0xabc", span_id="0x2",
                  parent="0x1", shard="3")], path="f")
        merged = tm.merge([f], align="meta")
        args = spans_of(merged)[0]["args"]
        self.assertEqual(args["trace_id"], "0xabc")
        self.assertEqual(args["span_id"], "0x2")
        self.assertEqual(args["parent_span_id"], "0x1")
        self.assertEqual(args["shard"], "3")


class PidHandling(unittest.TestCase):
    def test_colliding_pids_are_renumbered(self):
        a = tracefile([span("a", 0, 1)], pid=7, path="a")
        b = tracefile([span("b", 0, 1)], pid=7, path="b")
        merged = tm.merge([a, b], align="meta")
        by_name = {e["name"]: e for e in spans_of(merged)}
        self.assertEqual(by_name["a"]["pid"], 7)  # first claim wins
        self.assertNotEqual(by_name["b"]["pid"], 7)

    def test_distinct_pids_are_kept(self):
        client = tracefile([span("a", 0, 1)], pid=1, path="c")
        shard = tracefile([span("b", 0, 1)], pid=1000, path="s")
        merged = tm.merge([client, shard], align="meta")
        by_name = {e["name"]: e for e in spans_of(merged)}
        self.assertEqual(by_name["a"]["pid"], 1)
        self.assertEqual(by_name["b"]["pid"], 1000)

    def test_metadata_events_follow_their_process(self):
        meta_event = {"name": "process_name", "ph": "M", "pid": 7,
                      "tid": 0, "args": {"name": "shard-0"}}
        a = tracefile([span("a", 0, 1)], pid=7, path="a")
        b = tm.TraceFile("b", doc([meta_event, span("b", 0, 1)],
                                  base_us=0, pid=7, process="shard-0"))
        merged = tm.merge([a, b], align="meta")
        metas = [e for e in merged["traceEvents"] if e.get("ph") == "M"]
        self.assertEqual(len(metas), 1)
        by_name = {e["name"]: e for e in spans_of(merged)}
        # The renumbered pid applies to the metadata event too, so the
        # process row keeps its name.
        self.assertEqual(metas[0]["pid"], by_name["b"]["pid"])


class PingAlignment(unittest.TestCase):
    def _fixture(self, shard_base_error):
        # Truth: the ping wire exchange spans [100, 160] on the client; the
        # server handled it in the middle, [120, 140] in true time. The
        # shard's own epoch is off by `shard_base_error`, which meta
        # alignment cannot see.
        client = tracefile(
            [span("ps.client.attempt:ping", 100, 60, trace_id="0x1")],
            base_us=0, path="c")
        shard = tracefile(
            [span("ps.shard.handle:ping", 120 + shard_base_error, 20,
                  trace_id="0x1"),
             span("ps.shard.apply", 125 + shard_base_error, 5,
                  trace_id="0x1")],
            base_us=0, pid=1000, path="s")
        return client, shard

    def test_ping_offset_recovers_true_timeline(self):
        client, shard = self._fixture(shard_base_error=5000)
        merged = tm.merge([client, shard], align="ping")
        by_name = {e["name"]: e for e in spans_of(merged)}
        self.assertEqual(by_name["ps.shard.handle:ping"]["ts"],
                         by_name["ps.client.attempt:ping"]["ts"] + 20)
        # Every span of the shard file shifts by the same estimate.
        self.assertEqual(by_name["ps.shard.apply"]["ts"],
                         by_name["ps.client.attempt:ping"]["ts"] + 25)

    def test_ping_offset_handles_negative_error(self):
        client, shard = self._fixture(shard_base_error=-3000)
        merged = tm.merge([client, shard], align="ping")
        by_name = {e["name"]: e for e in spans_of(merged)}
        self.assertEqual(by_name["ps.shard.handle:ping"]["ts"],
                         by_name["ps.client.attempt:ping"]["ts"] + 20)

    def test_meta_mode_does_not_shift(self):
        client, shard = self._fixture(shard_base_error=5000)
        merged = tm.merge([client, shard], align="meta")
        by_name = {e["name"]: e for e in spans_of(merged)}
        self.assertEqual(by_name["ps.shard.handle:ping"]["ts"],
                         by_name["ps.client.attempt:ping"]["ts"] + 5020)

    def test_no_pairs_falls_back_to_meta(self):
        client = tracefile([span("ps.client.rpc:pull_rows", 0, 10,
                                 trace_id="0x9")], path="c")
        shard = tracefile([span("ps.shard.handle:pull_rows", 2, 6,
                                trace_id="0x9")], base_us=0, path="s")
        merged = tm.merge([client, shard], align="ping")
        self.assertEqual(merged["mamdrMeta"]["sources"][1]["offset_us"], 0)

    def test_median_over_multiple_pings(self):
        client = tracefile(
            [span("ps.client.attempt:ping", 100, 60, trace_id="0x1"),
             span("ps.client.attempt:ping", 300, 60, trace_id="0x2"),
             span("ps.client.attempt:ping", 500, 60, trace_id="0x3")],
            path="c")
        # One outlier pair (queue delay skews its midpoint); the median
        # ignores it.
        shard = tracefile(
            [span("ps.shard.handle:ping", 1120, 20, trace_id="0x1"),
             span("ps.shard.handle:ping", 1320, 20, trace_id="0x2"),
             span("ps.shard.handle:ping", 1560, 20, trace_id="0x3")],
            path="s")
        client2, shard2 = client, shard
        tm.merge([client2, shard2], align="ping")
        self.assertEqual(shard2.offset_us, -1000)


class CommandLine(unittest.TestCase):
    def test_end_to_end_merge(self):
        tool = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "mamdr_tracemerge.py")
        with tempfile.TemporaryDirectory() as tmp:
            c_path = os.path.join(tmp, "client.json")
            s_path = os.path.join(tmp, "shard-0.json")
            out = os.path.join(tmp, "merged.json")
            with open(c_path, "w") as f:
                json.dump(doc([span("a", 0, 10, trace_id="0x5")],
                              base_us=50, pid=1, process="trainer"), f)
            with open(s_path, "w") as f:
                json.dump(doc([span("b", 0, 4, trace_id="0x5")],
                              base_us=53, pid=1000, process="shard-0"), f)
            proc = subprocess.run(
                [sys.executable, tool, "-o", out, c_path, s_path],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 0, proc.stderr)
            with open(out) as f:
                merged = json.load(f)
            names = [e["name"] for e in spans_of(merged)]
            self.assertEqual(sorted(names), ["a", "b"])
            self.assertTrue(merged["mamdrMeta"]["merged"])

    def test_rejects_non_trace_input(self):
        tool = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "mamdr_tracemerge.py")
        with tempfile.TemporaryDirectory() as tmp:
            bad = os.path.join(tmp, "bad.json")
            with open(bad, "w") as f:
                f.write("{}")
            proc = subprocess.run(
                [sys.executable, tool, "-o",
                 os.path.join(tmp, "out.json"), bad],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 1)
            self.assertIn("traceEvents", proc.stderr)


if __name__ == "__main__":
    unittest.main()
