// §IV-E scalability: the PS-Worker simulation and the embedding cache
// (Figs. 6 & 7).
//
// Compares PS traffic (rows/bytes pulled and pushed, push ops) with the
// static+dynamic embedding cache enabled vs the synchronous no-cache
// baseline, across worker counts, and reports the resulting model quality.
// Expected shape: the cache cuts pulled rows by the within-epoch re-touch
// factor and collapses per-step pushes into one sparse push per epoch —
// orders of magnitude fewer push ops — with no loss of AUC.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "ps/distributed_mamdr.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("PS-Worker embedding cache: traffic and quality");

  auto result = data::Generate(data::TaobaoLike(20, 1.0, 17));
  MAMDR_CHECK(result.ok()) << result.status().ToString();
  const auto& ds = result.value();
  const auto mc = bench::BenchModelConfig(ds);

  std::printf("%-8s %-7s %-6s %12s %12s %10s %10s %8s\n", "workers",
              "cache", "mode", "rows_pulled", "rows_pushed", "pull_ops",
              "push_ops", "AUC");
  for (int64_t workers : {1, 2, 4}) {
    for (bool cache : {true, false}) {
      for (bool async : {false, true}) {
        if (async && (!cache || workers == 1)) continue;  // async needs >1
        ps::DistributedConfig dc;
        dc.num_workers = workers;
        dc.use_embedding_cache = cache;
        dc.async_epochs = async;
        dc.model_name = "MLP";
        dc.train = bench::BenchTrainConfig(/*epochs=*/4, 3);
        ps::DistributedMamdr dist(mc, &ds, dc);
        MAMDR_CHECK(dist.Train().ok());
        const auto stats = dist.server()->stats();
        std::printf("%-8lld %-7s %-6s %12llu %12llu %10llu %10llu %8.4f\n",
                    static_cast<long long>(workers), cache ? "on" : "off",
                    async ? "async" : "sync",
                    static_cast<unsigned long long>(stats.rows_pulled),
                    static_cast<unsigned long long>(stats.rows_pushed),
                    static_cast<unsigned long long>(stats.pull_ops),
                    static_cast<unsigned long long>(stats.push_ops),
                    dist.AverageTestAuc());
        std::fflush(stdout);
      }
    }
  }

  // Cache hit-rate detail for the single-worker run.
  {
    ps::DistributedConfig dc;
    dc.num_workers = 1;
    dc.use_embedding_cache = true;
    dc.model_name = "MLP";
    dc.train = bench::BenchTrainConfig(/*epochs=*/4, 3);
    ps::DistributedMamdr dist(mc, &ds, dc);
    MAMDR_CHECK(dist.Train().ok());
    uint64_t hits = 0, misses = 0;
    for (int64_t p = 0; p < dist.server()->num_params(); ++p) {
      if (!dist.server()->is_embedding(p)) continue;
      hits += dist.worker(0)->cache(p).stats().hits;
      misses += dist.worker(0)->cache(p).stats().misses;
    }
    std::printf("\ndynamic-cache hit rate (1 worker, 6 epochs): %.1f%% "
                "(%llu hits / %llu misses)\n",
                100.0 * static_cast<double>(hits) /
                    static_cast<double>(hits + misses),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses));
  }
  return 0;
}
