// bench_ps: parameter-server op round trips, direct vs networked.
//
// Measures the four PS ops every training step issues — dense pull/push and
// sparse embedding-row pull/push — against five backends sharing one
// parameter layout:
//
//   direct    DirectPsClient -> in-process ParameterServer (the lower
//             bound: one mutex and a memcpy, no serialization)
//   net1-cpo  NetPsClient -> 1-shard ShardGroup over loopback TCP with
//             pool_connections=false (the PR 8 transport: framing, CRC,
//             and a fresh connect per op)
//   net1      same shard group, pooled: one persistent connection reused
//             across ops — the connect/teardown cost drops out
//   net4-cpo  4-shard ShardGroup, connect-per-op (fan-out: a dense op is
//             one RPC per shard; a row op hits only the owners)
//   net4      4-shard, pooled (the production configuration)
//
// The pooled/-cpo pairs are the regression gate for the connection pool:
// pooled rtt must stay well under connect-per-op rtt.
//
// Reported per (backend, op): mean round-trip microseconds (`rtt_us`,
// lower-better for perfdiff) and throughput (`qps`: rows/s for the row
// ops, ops/s for the dense ops — higher-better). Everything is
// fixed-seed, faults off, so the numbers track serialization + socket
// cost, not chaos. Results go to stdout and a machine-readable
// BENCH_ps.json that tools/mamdr_perfdiff.py diffs against
// bench/baselines/BENCH_ps.json in CI.
//
// Flags:
//   --iters N  timed iterations per (backend, op) entry (default 200)
//   --rows N   embedding rows touched per sparse op (default 64)
//   --out PATH JSON output path (default BENCH_ps.json)
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/flags.h"
#include "common/random.h"
#include "obs/clock.h"
#include "ps/net/net_ps_client.h"
#include "ps/net/shard_group.h"
#include "ps/parameter_server.h"
#include "ps/ps_client.h"

using namespace mamdr;

namespace {

constexpr int64_t kEmbRows = 20000;
constexpr int64_t kEmbDim = 16;

struct Entry {
  std::string backend;
  std::string op;
  int64_t iters;
  int64_t rows;  // rows per sparse op; 0 for dense ops
  double rtt_us;
  double qps;
};

/// The shared layout: two dense tensors (a layer and its bias) plus one
/// embedding table, deterministically filled.
std::vector<Tensor> MakeLayout() {
  std::vector<Tensor> params{Tensor({128, 64}), Tensor({64}),
                             Tensor({kEmbRows, kEmbDim})};
  Rng rng(99);
  for (Tensor& p : params) {
    for (int64_t i = 0; i < p.size(); ++i) {
      p.data()[i] = static_cast<float>(rng.Uniform(-0.1, 0.1));
    }
  }
  return params;
}

std::vector<bool> IsEmbedding() { return {false, false, true}; }

/// `rows`-many deterministic row indices (with repeats, like a batch).
std::vector<int64_t> MakeRows(int64_t rows) {
  std::vector<int64_t> out;
  Rng rng(7);
  out.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    out.push_back(
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(kEmbRows))));
  }
  return out;
}

/// Runs the four-op suite against `client` and appends one Entry per op.
void BenchClient(ps::PsClient* client, const std::string& backend,
                 int64_t iters, int64_t rows_per_op,
                 std::vector<Entry>* entries) {
  const std::vector<Tensor> layout = MakeLayout();
  std::vector<Tensor> dense_out{Tensor({128, 64}), Tensor({64}), Tensor()};
  std::vector<Tensor> dense_delta{Tensor({128, 64}, 0.001f),
                                  Tensor({64}, 0.001f), Tensor()};
  Tensor table({kEmbRows, kEmbDim});
  Tensor row_delta({kEmbRows, kEmbDim});  // zeros; only touched rows matter
  const std::vector<int64_t> rows = MakeRows(rows_per_op);

  struct Op {
    const char* name;
    int64_t rows;  // per iteration
    std::function<void()> run;
  };
  const std::vector<Op> ops = {
      {"pull_dense", 0,
       [&] { MAMDR_CHECK(client->PullDense(&dense_out).ok()); }},
      {"push_dense", 0,
       [&] { MAMDR_CHECK(client->PushDenseDelta(dense_delta, 0.1f).ok()); }},
      {"pull_rows", rows_per_op,
       [&] { MAMDR_CHECK(client->PullRows(2, rows, &table).ok()); }},
      {"push_rows", rows_per_op,
       [&] {
         MAMDR_CHECK(client->PushRowDeltas(2, rows, row_delta, 0.1f).ok());
       }},
  };

  for (const Op& op : ops) {
    op.run();  // warmup: metric registration, first connect, page-in
    const int64_t t0 = obs::MonotonicMicros();
    for (int64_t i = 0; i < iters; ++i) op.run();
    const int64_t us = obs::MonotonicMicros() - t0;
    Entry e;
    e.backend = backend;
    e.op = op.name;
    e.iters = iters;
    e.rows = op.rows;
    e.rtt_us = static_cast<double>(us) / static_cast<double>(iters);
    const double per_iter = op.rows > 0 ? static_cast<double>(op.rows) : 1.0;
    e.qps = us > 0 ? per_iter * static_cast<double>(iters) * 1e6 /
                         static_cast<double>(us)
                   : 0.0;
    entries->push_back(e);
    std::printf("  %-7s %-11s rtt %9.1f us   %12.0f %s\n", backend.c_str(),
                op.name, e.rtt_us, e.qps, op.rows > 0 ? "rows/s" : "ops/s");
    std::fflush(stdout);
  }
}

void WriteJson(const std::string& path, const std::vector<Entry>& entries) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"ps\",\n  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"op\": \"%s\", \"iters\": "
                 "%" PRId64 ", \"rows\": %" PRId64
                 ", \"rtt_us\": %.2f, \"qps\": %.1f}%s\n",
                 e.backend.c_str(), e.op.c_str(), e.iters, e.rows, e.rtt_us,
                 e.qps, i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  FlagParser flags = std::move(parsed).value();
  if (Status s = ApplyGlobalFlags(flags); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const int64_t iters = flags.GetInt("iters", 200);
  const int64_t rows = flags.GetInt("rows", 64);
  const std::string out = flags.GetString("out", "BENCH_ps.json");

  std::printf("=== ps bench (%" PRId64 " iters/op, %" PRId64
              " rows/sparse op, emb %" PRId64 "x%" PRId64 ") ===\n\n",
              iters, rows, kEmbRows, kEmbDim);

  std::vector<Entry> entries;

  {
    ps::ParameterServer server(MakeLayout(), IsEmbedding());
    ps::DirectPsClient client(&server);
    BenchClient(&client, "direct", iters, rows, &entries);
  }

  for (const int num_shards : {1, 4}) {
    ps::net::ShardGroupConfig gc;
    gc.num_shards = num_shards;
    ps::net::ShardGroup group(gc, MakeLayout(), IsEmbedding());
    MAMDR_CHECK(group.Start().ok());
    // Connect-per-op first, then pooled, against the same live group: the
    // pair isolates exactly the transport difference.
    for (const bool pooled : {false, true}) {
      ps::net::NetPsClientConfig cc;
      cc.num_shards = num_shards;
      cc.pool_connections = pooled;
      ps::net::NetPsClient client(cc, group.directory(), MakeLayout(),
                                  IsEmbedding());
      BenchClient(&client,
                  "net" + std::to_string(num_shards) + (pooled ? "" : "-cpo"),
                  iters, rows, &entries);
    }
  }

  WriteJson(out, entries);
  return 0;
}
