// §III-B / §IV-C mechanism check (Fig. 3 + the InnerGrad analysis): does DN
// actually raise cross-domain gradient alignment relative to Alternate
// training and PCGrad?
//
// For each framework we train on a conflict-heavy dataset and measure, after
// every epoch, the pairwise inner products / cosines of per-domain full-batch
// gradients at the current parameters. Expected shape: DN ends with a higher
// mean cosine and a lower conflict rate (fraction of negative pairs) than
// Alternate; PCGrad sits in between (it removes conflicts per step but does
// not move parameters toward agreement). A second sweep shows the dataset's
// conflict knob is real: higher conflict level -> higher observed conflict
// rate under plain training.
#include <cstdio>

#include "bench/bench_util.h"
#include "metrics/conflict_probe.h"
#include "optim/param_snapshot.h"

using namespace mamdr;

namespace {

metrics::ConflictReport ProbeConflict(models::CtrModel* model,
                                      const data::MultiDomainDataset& ds) {
  auto params = model->Parameters();
  Rng rng(1);
  nn::Context ctx{true, &rng};
  std::vector<Tensor> grads;
  for (int64_t d = 0; d < ds.num_domains(); ++d) {
    for (auto& p : params) p.ZeroGrad();
    data::Batch b = data::Batcher::All(ds.domain(d).train);
    model->Loss(b, d, ctx).Backward();
    grads.push_back(optim::Flatten(optim::GradSnapshot(params)));
  }
  return metrics::MeasureConflict(grads);
}

}  // namespace

int main() {
  bench::PrintHeader("Conflict probe: gradient alignment across domains");

  // Part 1: alignment trajectory per framework.
  {
    data::SyntheticConfig gen = data::TaobaoLike(10, 1.0, 17);
    for (auto& d : gen.domains) d.conflict = 0.8;  // conflict-heavy
    auto ds = data::Generate(gen).value();
    const auto mc = bench::BenchModelConfig(ds);

    std::printf("dataset: %s (conflict=0.8)\n\n", ds.name().c_str());
    std::printf("%-12s %8s %12s %14s\n", "framework", "epoch", "mean cosine",
                "conflict rate");
    for (const char* fw_name : {"Alternate", "PCGrad", "DN"}) {
      Rng rng(mc.seed);
      auto model = models::CreateModel("MLP", mc, &rng).value();
      auto tc = bench::BenchTrainConfig(/*epochs=*/8, 3);
      auto fw =
          core::CreateFramework(fw_name, model.get(), &ds, tc).value();
      for (int64_t e = 1; e <= tc.epochs; ++e) {
        fw->TrainEpoch();
        if (e % 4 == 0) {
          const auto report = ProbeConflict(model.get(), ds);
          std::printf("%-12s %8lld %12.4f %14.3f\n", fw_name,
                      static_cast<long long>(e), report.mean_cosine,
                      report.conflict_rate);
          std::fflush(stdout);
        }
      }
    }
  }

  // Part 2: the generator's conflict knob controls observed conflict.
  {
    std::printf("\nconflict knob sweep (Alternate, epoch 4):\n");
    std::printf("%-16s %12s %14s\n", "conflict level", "mean cosine",
                "conflict rate");
    for (double level : {0.0, 0.4, 0.8}) {
      data::SyntheticConfig gen = data::TaobaoLike(10, 1.0, 23);
      for (auto& d : gen.domains) d.conflict = level;
      auto ds = data::Generate(gen).value();
      const auto mc = bench::BenchModelConfig(ds);
      Rng rng(mc.seed);
      auto model = models::CreateModel("MLP", mc, &rng).value();
      auto tc = bench::BenchTrainConfig(/*epochs=*/4, 3);
      auto fw =
          core::CreateFramework("Alternate", model.get(), &ds, tc).value();
      fw->Train();
      const auto report = ProbeConflict(model.get(), ds);
      std::printf("%-16.1f %12.4f %14.3f\n", level, report.mean_cosine,
                  report.conflict_rate);
      std::fflush(stdout);
    }
  }
  return 0;
}
