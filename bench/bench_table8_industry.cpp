// Tables VIII and IX: the industry-scale dataset (Taobao-online analogue).
//
// Table VIII: average AUC of RAW, MMOE, CGC, PLE (alternately trained),
// RAW+Separate, RAW+DN and RAW+MAMDR over all domains. Table IX: the same
// methods on the 10 largest domains. Expected shape: RAW+MAMDR best overall
// AND on every large domain; RAW+Separate worst of the RAW variants (sparse
// domains can't train independent models); RAW+DN in between.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench/bench_util.h"
#include "common/string_util.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("Tables VIII & IX: industry dataset (Taobao-online)");

  auto result = data::Generate(data::IndustryLike(24, 1.0, 17));
  MAMDR_CHECK(result.ok()) << result.status().ToString();
  const auto& ds = result.value();
  const auto mc = bench::BenchModelConfig(ds);
  // The paper's industry setting uses SGD inner lr 0.1 on a 1700-dim
  // production model; at this scale plain SGD barely moves the embeddings
  // within the epoch budget, so the Adam inner loop of the public-benchmark
  // config is used here (the framework comparison is what matters).
  auto tc = bench::BenchTrainConfig(/*epochs=*/5, 5);
  tc.dr_max_batches = 2;

  struct Method {
    const char* label;
    const char* model;
    const char* framework;
  };
  const std::vector<Method> methods = {
      {"RAW", "RAW", "Alternate"},
      {"MMOE", "MMOE", "Alternate"},
      {"CGC", "CGC", "Alternate"},
      {"PLE", "PLE", "Alternate"},
      {"RAW+Separate", "RAW", "Separate"},
      {"RAW+DN", "RAW", "DN"},
      {"RAW+MAMDR", "RAW", "MAMDR"},
  };

  std::vector<std::vector<double>> all_aucs;
  for (const auto& m : methods) {
    all_aucs.push_back(bench::RunMethod(m.model, m.framework, ds, mc, tc));
    std::fprintf(stderr, "[table8] %s done\n", m.label);
  }

  // Table VIII: average AUC.
  {
    std::vector<std::string> header{"Method"}, row{"AUC"};
    for (const auto& m : methods) header.push_back(m.label);
    for (const auto& aucs : all_aucs) {
      row.push_back(FormatFloat(bench::Mean(aucs), 4));
    }
    std::printf("--- Table VIII: average AUC over %lld domains ---\n%s\n",
                static_cast<long long>(ds.num_domains()),
                RenderTable(header, {row}).c_str());
  }

  // Table IX: the 10 largest domains.
  {
    std::vector<int64_t> order(static_cast<size_t>(ds.num_domains()));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return ds.domain(a).TotalSamples() > ds.domain(b).TotalSamples();
    });
    order.resize(10);

    std::vector<std::string> header{"Method"};
    for (size_t i = 0; i < order.size(); ++i) {
      header.push_back("Top " + std::to_string(i + 1));
    }
    std::vector<std::vector<std::string>> rows;
    for (size_t m = 0; m < methods.size(); ++m) {
      std::vector<std::string> row{methods[m].label};
      for (int64_t d : order) {
        row.push_back(FormatFloat(all_aucs[m][static_cast<size_t>(d)], 4));
      }
      rows.push_back(std::move(row));
    }
    std::printf("--- Table IX: top-10 largest domains ---\n%s\n",
                RenderTable(header, rows).c_str());
  }
  return 0;
}
