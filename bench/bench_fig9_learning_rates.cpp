// Figure 9: average AUC of MLP+DN under different inner-loop (alpha) and
// outer-loop (beta) learning rates, on Taobao-10.
//
// The inner loop is plain SGD (as in the paper's analysis — the Taylor
// expansion of §IV-C is an SGD-step expansion). Because our laptop-scale
// model/dataset differ from the paper's, the absolute alpha grid is mapped
// to this scale: {10, 3, 1, 0.1} plays the role of the paper's
// {1e-1, 1e-2, 1e-3, 1e-4}. Expected shape, matching Fig. 9:
//   * the largest alpha barely trains (breaks the small-alpha Taylor
//     assumption),
//   * an interior alpha is best,
//   * beta in [0.5, 1) close to but better than beta=1 at the optimum —
//     beta=1 is the Alternate-degenerate case and loses at the best alpha,
//   * very small beta is slow (undertrained at a fixed epoch budget).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"

using namespace mamdr;

int main() {
  bench::PrintHeader(
      "Figure 9: AUC vs inner lr (alpha) x outer lr (beta), Taobao-10");

  auto result = data::Generate(data::TaobaoLike(10, 1.0, 17));
  MAMDR_CHECK(result.ok()) << result.status().ToString();
  const auto& ds = result.value();
  const auto mc = bench::BenchModelConfig(ds);

  const std::vector<float> alphas = {10.0f, 3.0f, 1.0f, 0.1f};
  const std::vector<float> betas = {1.0f, 0.5f, 0.1f, 0.05f};

  std::vector<std::string> header{"alpha \\ beta"};
  for (float b : betas) header.push_back(FormatFloat(b, 2));
  std::vector<std::vector<std::string>> rows;
  for (float a : alphas) {
    std::vector<std::string> row{FormatFloat(a, 2)};
    for (float b : betas) {
      auto tc = bench::BenchTrainConfig(/*epochs=*/24, 3);
      tc.inner_optimizer = "sgd";
      tc.inner_lr = a;
      tc.outer_lr = b;
      const auto aucs = bench::RunMethod("MLP", "DN", ds, mc, tc);
      row.push_back(FormatFloat(bench::Mean(aucs), 4));
      std::fprintf(stderr, "[fig9] alpha=%g beta=%g done\n", a, b);
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  return 0;
}
