// Design-decision ablations called out in DESIGN.md §5 — the mechanism
// claims behind Algorithms 1 and 2 that the paper argues analytically:
//
//  (a) DR's fixed helper -> target update order (Eq. 22: the target-domain
//      Hessian regularizes the helper gradient only when the target update
//      comes second). Compare helper-first / target-first / random order.
//  (b) DN's per-epoch domain shuffle (Eq. 19: shuffling symmetrizes the
//      Taylor cross-term into the InnerGrad ascent direction). Compare
//      shuffled vs fixed inner-loop order.
//
// Expected shape: helper-first >= the other orders on sparse-domain-heavy
// data; shuffled DN >= fixed-order DN.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/framework_registry.h"

using namespace mamdr;

namespace {

double RunWithConfig(const data::MultiDomainDataset& ds,
                     const models::ModelConfig& mc,
                     const core::TrainConfig& tc, const char* framework,
                     int num_seeds = 1) {
  return bench::Mean(
      bench::RunMethod("MLP", framework, ds, mc, tc, num_seeds));
}

}  // namespace

int main() {
  bench::PrintHeader("Design ablations: DR update order, DN shuffle");

  // (a) DR order, on a sparse-domain-heavy dataset (Amazon-13-like).
  {
    auto ds = data::Generate(data::Amazon13Like(0.5, 17)).value();
    const auto mc = bench::BenchModelConfig(ds);
    std::vector<std::vector<std::string>> rows;
    for (auto [label, order] :
         {std::pair{"helper->target (paper)",
                    core::TrainConfig::DrOrder::kHelperFirst},
          std::pair{"target->helper",
                    core::TrainConfig::DrOrder::kTargetFirst},
          std::pair{"random order", core::TrainConfig::DrOrder::kRandom}}) {
      auto tc = bench::BenchTrainConfig(/*epochs=*/8, 5);
      tc.dr_order = order;
      rows.push_back(
          {label, FormatFloat(RunWithConfig(ds, mc, tc, "DR"), 4)});
      std::fprintf(stderr, "[ablation] DR order %s done\n", label);
    }
    std::printf("--- DR update order (Amazon-13-like, DR framework) ---\n%s\n",
                RenderTable({"Order", "avg AUC"}, rows).c_str());
  }

  // (b) DN shuffle, on a conflict-heavy dataset.
  {
    auto gen = data::TaobaoLike(10, 1.0, 17);
    for (auto& d : gen.domains) d.conflict = 0.8;
    auto ds = data::Generate(gen).value();
    const auto mc = bench::BenchModelConfig(ds);
    std::vector<std::vector<std::string>> rows;
    for (bool shuffle : {true, false}) {
      auto tc = bench::BenchTrainConfig(/*epochs=*/10, 3);
      tc.dn_shuffle = shuffle;
      rows.push_back({shuffle ? "shuffled (paper)" : "fixed order",
                      FormatFloat(RunWithConfig(ds, mc, tc, "DN"), 4)});
      std::fprintf(stderr, "[ablation] DN shuffle=%d done\n", shuffle);
    }
    std::printf(
        "--- DN domain order (Taobao-10-like, conflict=0.8, DN) ---\n%s\n",
        RenderTable({"Inner-loop order", "avg AUC"}, rows).c_str());
  }
  return 0;
}
