// Tables I-IV: dataset statistics of the MDR benchmark datasets.
//
// Prints the Table-I style summary row for every benchmark config plus the
// per-domain breakdowns (Tables II-IV analogues). Shapes to check against
// the paper: Amazon-13 adds 7 sparse domains to Amazon-6; Taobao domains are
// far sparser per domain than Amazon; the industry config is heavy-tailed;
// all CTR ratios lie in [0.2, 0.5].
#include <cstdio>

#include "bench/bench_util.h"
#include "data/stats.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("Tables I-IV: MDR benchmark dataset statistics");

  struct Entry {
    const char* label;
    data::SyntheticConfig config;
    bool per_domain;
  };
  const std::vector<Entry> entries = {
      {"Amazon-6-like (Table II)", data::Amazon6Like(1.0, 17), true},
      {"Amazon-13-like (Table III)", data::Amazon13Like(1.0, 17), true},
      {"Taobao-10-like (Table IV)", data::TaobaoLike(10, 1.0, 17), true},
      {"Taobao-20-like (Table IV)", data::TaobaoLike(20, 1.0, 17), false},
      {"Taobao-30-like (Table IV)", data::TaobaoLike(30, 1.0, 17), false},
      {"Industry-like (Taobao-online)", data::IndustryLike(64, 1.0, 17),
       false},
  };

  for (const auto& e : entries) {
    auto result = data::Generate(e.config);
    MAMDR_CHECK(result.ok()) << result.status().ToString();
    const auto stats = data::ComputeStats(result.value());
    std::printf("--- %s ---\n%s\n", e.label,
                data::FormatStats(stats, e.per_domain).c_str());
  }
  return 0;
}
