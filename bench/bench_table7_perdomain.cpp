// Table VII: per-domain test AUC of the DN/DR ablation on Amazon-6.
//
// Expected shape: the full MAMDR wins (or ties) on every domain; removing
// DR hurts the small "Prime Pantry" domain the most (sparse-domain
// overfitting is what DR fixes).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("Table VII: per-domain ablation on Amazon-6");

  auto result = data::Generate(data::Amazon6Like(0.5, 17));
  MAMDR_CHECK(result.ok()) << result.status().ToString();
  const auto& ds = result.value();
  const auto mc = bench::BenchModelConfig(ds);
  const auto tc = bench::BenchTrainConfig(/*epochs=*/8, 3);

  struct Variant {
    const char* label;
    const char* framework;
  };
  const std::vector<Variant> variants = {
      {"MLP+MAMDR (DN+DR)", "MAMDR"},
      {"w/o DN", "DR"},
      {"w/o DR", "DN"},
      {"w/o DN+DR", "Alternate"},
  };

  std::vector<std::string> header{"Method"};
  for (const auto& d : ds.domains()) header.push_back(d.name);
  std::vector<std::vector<std::string>> rows;
  for (const auto& v : variants) {
    const auto aucs = bench::RunMethod("MLP", v.framework, ds, mc, tc);
    std::vector<std::string> row{v.label};
    for (double a : aucs) row.push_back(FormatFloat(a, 4));
    rows.push_back(std::move(row));
    std::fprintf(stderr, "[table7] %s done\n", v.label);
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  return 0;
}
