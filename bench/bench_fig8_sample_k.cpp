// Figure 8: average AUC of MLP+MAMDR on Taobao-30 under different DR
// sample numbers k.
//
// Expected shape: AUC rises with k up to a moderate value (the paper finds
// a peak around k=5), then flattens or drops — too many helper domains pull
// the specific parameters away from the shared ones.
#include <cstdio>

#include "bench/bench_util.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("Figure 8: AUC vs DR sample number k (Taobao-30)");

  auto result = data::Generate(data::TaobaoLike(30, 0.7, 17));
  MAMDR_CHECK(result.ok()) << result.status().ToString();
  const auto& ds = result.value();
  const auto mc = bench::BenchModelConfig(ds);

  std::printf("%-6s %s\n", "k", "avg test AUC");
  for (int64_t k : {1, 3, 5, 10}) {
    auto tc = bench::BenchTrainConfig(/*epochs=*/6, k);
    tc.dr_max_batches = 2;
    const auto aucs = bench::RunMethod("MLP", "MAMDR", ds, mc, tc);
    std::printf("%-6lld %.4f\n", static_cast<long long>(k),
                bench::Mean(aucs));
    std::fflush(stdout);
  }
  return 0;
}
