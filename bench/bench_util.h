// Shared driver code for the experiment benches (one binary per paper
// table/figure; see DESIGN.md §4 for the index).
#ifndef MAMDR_BENCH_BENCH_UTIL_H_
#define MAMDR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/framework_registry.h"
#include "data/synthetic.h"
#include "metrics/rank_table.h"
#include "models/registry.h"

namespace mamdr {
namespace bench {

/// Standard bench-scale hyper-parameters (§V-C scaled to laptop).
inline core::TrainConfig BenchTrainConfig(int64_t epochs = 12,
                                          int64_t dr_sample_k = 3) {
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.batch_size = 256;
  tc.inner_lr = 1e-3f;
  tc.outer_lr = 0.5f;
  tc.dr_lr = 0.5f;
  tc.dr_sample_k = dr_sample_k;
  tc.dr_max_batches = 3;
  tc.finetune_epochs = 2;
  tc.seed = 42;
  return tc;
}

/// Standard bench-scale model config.
inline models::ModelConfig BenchModelConfig(
    const data::MultiDomainDataset& ds, uint64_t seed = 7) {
  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};
  mc.expert_hidden = {64};
  mc.tower_hidden = {16};
  mc.attn_heads = 2;
  mc.attn_head_dim = 8;
  mc.seed = seed;
  return mc;
}

/// Train `framework_name` over `model_name` and return per-domain *test*
/// AUC at the epoch with the best average *validation* AUC (the standard
/// selection rule; the paper trains with early stopping on validation).
inline std::vector<double> RunMethod(const std::string& model_name,
                                     const std::string& framework_name,
                                     const data::MultiDomainDataset& ds,
                                     const models::ModelConfig& mc,
                                     const core::TrainConfig& tc,
                                     int num_seeds = 1) {
  std::vector<double> accum(static_cast<size_t>(ds.num_domains()), 0.0);
  for (int s = 0; s < num_seeds; ++s) {
    models::ModelConfig mcs = mc;
    mcs.seed = mc.seed + static_cast<uint64_t>(s) * 1009;
    core::TrainConfig tcs = tc;
    tcs.seed = tc.seed + static_cast<uint64_t>(s) * 2003;
    Rng rng(mcs.seed);
    auto model = models::CreateModel(model_name, mcs, &rng);
    MAMDR_CHECK(model.ok()) << model.status().ToString();
    auto fw = core::CreateFramework(framework_name, model.value().get(), &ds,
                                    tcs);
    MAMDR_CHECK(fw.ok()) << fw.status().ToString();

    double best_val = -1.0;
    std::vector<double> best_test;
    for (int64_t e = 0; e < tcs.epochs; ++e) {
      fw.value()->TrainEpoch();
      const auto val = fw.value()->Evaluate(metrics::Split::kVal);
      double avg_val = 0.0;
      for (double a : val) avg_val += a;
      avg_val /= static_cast<double>(val.size());
      if (avg_val > best_val) {
        best_val = avg_val;
        best_test = fw.value()->Evaluate(metrics::Split::kTest);
      }
    }
    for (size_t d = 0; d < accum.size(); ++d) accum[d] += best_test[d];
  }
  for (double& a : accum) a /= static_cast<double>(num_seeds);
  return accum;
}

/// Average of a per-domain AUC vector.
inline double Mean(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return v.empty() ? 0.0 : s / static_cast<double>(v.size());
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace bench
}  // namespace mamdr

#endif  // MAMDR_BENCH_BENCH_UTIL_H_
