// Table V: comparison with multi-domain recommendation methods under
// average AUC and average RANK on Amazon-6/13 and Taobao-10/20/30.
//
// Baselines are alternately trained (as in §V-D); MLP+MAMDR is the paper's
// method. Expected shape (not absolute numbers): MLP+MAMDR attains the best
// average RANK on every dataset and lifts MLP's AUC substantially; multi-
// domain structures (Shared-Bottom/MMOE/PLE) generally beat plain single-
// domain structures.
#include <cstdio>

#include "bench/bench_util.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("Table V: methods x datasets (avg AUC / avg RANK)");

  struct DatasetEntry {
    const char* label;
    data::SyntheticConfig config;
  };
  const std::vector<DatasetEntry> datasets = {
      {"Amazon-6", data::Amazon6Like(0.5, 17)},
      {"Amazon-13", data::Amazon13Like(0.5, 17)},
      {"Taobao-10", data::TaobaoLike(10, 1.0, 17)},
      {"Taobao-20", data::TaobaoLike(20, 1.0, 17)},
      {"Taobao-30", data::TaobaoLike(30, 1.0, 17)},
  };

  // Method = model structure + training framework.
  struct Method {
    const char* label;
    const char* model;
    const char* framework;
  };
  const std::vector<Method> methods = {
      {"MLP", "MLP", "Alternate"},
      {"WDL", "WDL", "Alternate"},
      {"NeurFM", "NeurFM", "Alternate"},
      {"AutoInt", "AutoInt", "Alternate"},
      {"DeepFM", "DeepFM", "Alternate"},
      {"Shared-bottom", "Shared-Bottom", "Alternate"},
      {"MMOE", "MMOE", "Alternate"},
      {"PLE", "PLE", "Alternate"},
      {"Star", "STAR", "Alternate"},
      {"MLP+MAMDR", "MLP", "MAMDR"},
  };

  for (const auto& de : datasets) {
    auto result = data::Generate(de.config);
    MAMDR_CHECK(result.ok()) << result.status().ToString();
    const auto& ds = result.value();
    const auto mc = bench::BenchModelConfig(ds);
    // DR sample counts per dataset follow §V-C: [3,5,5,5,5].
    const int64_t k = std::string(de.label) == "Amazon-6" ? 3 : 5;
    const auto tc = bench::BenchTrainConfig(/*epochs=*/8, k);

    std::vector<metrics::MethodResult> results;
    for (const auto& m : methods) {
      metrics::MethodResult r;
      r.method = m.label;
      r.domain_auc =
          bench::RunMethod(m.model, m.framework, ds, mc, tc);
      results.push_back(std::move(r));
      std::fprintf(stderr, "[table5] %s / %s done\n", de.label, m.label);
    }
    std::printf("--- %s ---\n%s\n", de.label,
                metrics::FormatRankTable(metrics::ComputeRankTable(results))
                    .c_str());
  }
  return 0;
}
