// google-benchmark microbenchmarks of the engine primitives the training
// frameworks are built on: matmul kernels, autograd forward/backward,
// embedding lookup, optimizer steps and parameter snapshots. These bound
// the per-sample training cost of every experiment bench.
#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "common/random.h"
#include "models/registry.h"
#include "optim/adam.h"
#include "optim/param_snapshot.h"
#include "tensor/tensor_ops.h"

namespace mamdr {
namespace {

Tensor RandTensor(const Shape& shape, Rng* rng) {
  Tensor t(shape);
  for (int64_t i = 0; i < t.size(); ++i) {
    t.at(i) = static_cast<float>(rng->Normal());
  }
  return t;
}

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = RandTensor({n, n}, &rng);
  Tensor b = RandTensor({n, n}, &rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_MlpForwardBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(2);
  autograd::Var w1(RandTensor({64, 64}, &rng), true);
  autograd::Var w2(RandTensor({64, 32}, &rng), true);
  autograd::Var w3(RandTensor({32, 1}, &rng), true);
  Tensor x = RandTensor({batch, 64}, &rng);
  Tensor labels({batch, 1});
  for (int64_t i = 0; i < batch; ++i) labels.at(i) = i % 2 ? 1.0f : 0.0f;
  for (auto _ : state) {
    for (auto& p : {w1, w2, w3}) {
      autograd::Var v = p;
      v.ZeroGrad();
    }
    autograd::Var h = autograd::Relu(autograd::MatMul(autograd::Var(x), w1));
    h = autograd::Relu(autograd::MatMul(h, w2));
    autograd::Var loss =
        autograd::BceWithLogitsMean(autograd::MatMul(h, w3), labels);
    loss.Backward();
    benchmark::DoNotOptimize(loss.value().at(0));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_MlpForwardBackward)->Arg(64)->Arg(256);

void BM_EmbeddingLookupBackward(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  autograd::Var table(RandTensor({10000, 16}, &rng), true);
  std::vector<int64_t> ids(static_cast<size_t>(batch));
  for (auto& id : ids) id = static_cast<int64_t>(rng.UniformInt(10000));
  for (auto _ : state) {
    table.ZeroGrad();
    autograd::Var out = autograd::EmbeddingLookup(table, ids);
    autograd::Sum(autograd::Square(out)).Backward();
    benchmark::DoNotOptimize(table.grad().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EmbeddingLookupBackward)->Arg(256);

void BM_AdamStep(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(4);
  autograd::Var p(RandTensor({n}, &rng), true);
  p.ZeroGrad();
  for (int64_t i = 0; i < n; ++i) p.mutable_grad().at(i) = 0.01f;
  optim::Adam opt({p}, 1e-3f);
  for (auto _ : state) {
    opt.Step();
    benchmark::DoNotOptimize(p.value().data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdamStep)->Arg(100000);

void BM_ParamSnapshotRestore(benchmark::State& state) {
  Rng rng(5);
  // A realistic model's parameter vector.
  auto ds_users = 4000, ds_items = 1500;
  models::ModelConfig mc;
  mc.num_users = ds_users;
  mc.num_items = ds_items;
  mc.num_domains = 10;
  auto model = models::CreateModel("MLP", mc, &rng).value();
  auto params = model->Parameters();
  for (auto _ : state) {
    auto snap = optim::Snapshot(params);
    optim::Restore(params, snap);
    benchmark::DoNotOptimize(snap.size());
  }
  state.SetItemsProcessed(state.iterations() * model->NumParameters());
}
BENCHMARK(BM_ParamSnapshotRestore);

void BM_MetaInterpolate(benchmark::State& state) {
  Rng rng(6);
  models::ModelConfig mc;
  mc.num_users = 4000;
  mc.num_items = 1500;
  auto model = models::CreateModel("MLP", mc, &rng).value();
  auto params = model->Parameters();
  auto snap = optim::Snapshot(params);
  for (auto _ : state) {
    optim::MetaInterpolate(params, snap, 0.5f);
    benchmark::DoNotOptimize(params.size());
  }
  state.SetItemsProcessed(state.iterations() * model->NumParameters());
}
BENCHMARK(BM_MetaInterpolate);

}  // namespace
}  // namespace mamdr

BENCHMARK_MAIN();
