// Table X: learning-framework comparison on Taobao-10 across model
// structures (average AUC).
//
// Frameworks: Alternate, Alternate+Finetune, Weighted Loss, PCGrad, MAML,
// Reptile, MLDG, DN, DR, MAMDR. Structures: MLP, WDL, NeurFM, DeepFM,
// Shared-bottom, Star. Expected shape: MAMDR best for every structure;
// PCGrad > Weighted Loss; MAML worst of the meta-learners; DR helps single-
// domain structures most, DN helps structures that already have specific
// parameters (Shared-bottom, Star).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("Table X: frameworks x model structures on Taobao-10");

  auto result = data::Generate(data::TaobaoLike(10, 1.0, 17));
  MAMDR_CHECK(result.ok()) << result.status().ToString();
  const auto& ds = result.value();
  const auto tc = bench::BenchTrainConfig(/*epochs=*/10, 3);

  const std::vector<const char*> frameworks = {
      "Alternate", "Alternate+Finetune", "Weighted Loss", "PCGrad",
      "MAML",      "Reptile",            "MLDG",          "DN",
      "DR",        "MAMDR"};
  const std::vector<const char*> structures = {
      "MLP", "WDL", "NeurFM", "DeepFM", "Shared-Bottom", "STAR"};

  std::vector<std::string> header{"Model"};
  for (const char* f : frameworks) header.push_back(f);

  std::vector<std::vector<std::string>> rows;
  for (const char* s : structures) {
    const auto mc = bench::BenchModelConfig(ds);
    std::vector<std::string> row{s};
    for (const char* f : frameworks) {
      const auto aucs = bench::RunMethod(s, f, ds, mc, tc);
      row.push_back(FormatFloat(bench::Mean(aucs), 4));
      std::fprintf(stderr, "[table10] %s / %s done\n", s, f);
    }
    rows.push_back(std::move(row));
  }
  std::printf("%s\n", RenderTable(header, rows).c_str());
  return 0;
}
