// bench_kernels: throughput of the tensor kernel layer.
//
// For representative CTR shapes (batch x embed-concat x hidden) it reports
// GFLOP/s of three MatMul variants:
//   serial    — the growth seed's single-threaded unblocked kernel
//               (ops::MatMulNaive), the trajectory baseline;
//   blocked   — the cache-blocked kernel pinned to 1 thread;
//   parallel  — the cache-blocked kernel on the kernel pool.
// Plus the transposed variants and an elementwise bandwidth probe at the
// paper-scale shape. Results go to stdout and to a machine-readable
// BENCH_kernels.json so later PRs can track the trajectory.
//
// Flags:
//   --threads N   pool size for the parallel variant (0 = auto, default)
//   --repeats N   timing repetitions per variant (default 5, best-of)
//   --out PATH    JSON output path (default BENCH_kernels.json)
// Plus the global observability flags (--metrics-out/--trace-out), so a
// bench run can emit spans alongside its JSON.
#include <cinttypes>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/parallel_for.h"
#include "common/random.h"
#include "obs/clock.h"
#include "obs/telemetry.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

using namespace mamdr;

namespace {

struct Entry {
  std::string kernel;
  std::string variant;
  int64_t m, k, n;
  int64_t threads;
  double ms;
  double gflops;
};

Tensor RandomTensor(int64_t rows, int64_t cols, Rng* rng) {
  Tensor t({rows, cols});
  float* p = t.data();
  for (int64_t i = 0; i < t.size(); ++i) {
    p[i] = static_cast<float>(rng->Uniform(-1.0, 1.0));
  }
  return t;
}

/// Best-of-N wall time in seconds (one untimed warmup run).
double TimeBest(const std::function<void()>& fn, int repeats) {
  fn();
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    const double t0 = obs::MonotonicSeconds();
    fn();
    const double s = obs::MonotonicSeconds() - t0;
    if (s < best) best = s;
  }
  return best;
}

Entry Measure(const std::string& kernel, const std::string& variant,
              int64_t m, int64_t k, int64_t n, int64_t threads, int repeats,
              const std::function<void()>& fn) {
  const double secs = TimeBest(fn, repeats);
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n);
  Entry e{kernel, variant, m, k, n, threads, secs * 1e3, flops / secs / 1e9};
  std::printf("  %-14s %-9s %5" PRId64 " x %4" PRId64 " x %4" PRId64
              "  threads=%-2" PRId64 "  %8.3f ms  %7.2f GFLOP/s\n",
              e.kernel.c_str(), e.variant.c_str(), m, k, n, threads, e.ms,
              e.gflops);
  return e;
}

void WriteJson(const std::string& path, int64_t parallel_threads,
               const std::vector<Entry>& entries) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"kernels\",\n");
  std::fprintf(f, "  \"parallel_threads\": %" PRId64 ",\n", parallel_threads);
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"variant\": \"%s\", "
                 "\"m\": %" PRId64 ", \"k\": %" PRId64 ", \"n\": %" PRId64
                 ", \"threads\": %" PRId64
                 ", \"ms\": %.4f, \"gflops\": %.4f}%s\n",
                 e.kernel.c_str(), e.variant.c_str(), e.m, e.k, e.n,
                 e.threads, e.ms, e.gflops,
                 i + 1 == entries.size() ? "" : ",");
  }
  // Where the measured time went, per kernel.variant summed over shapes —
  // the timing breakdown consumers diff across PRs.
  std::map<std::string, double> breakdown;
  for (const Entry& e : entries) breakdown[e.kernel + "." + e.variant] += e.ms;
  std::fprintf(f, "  ],\n  \"timing_breakdown_ms\": {\n");
  size_t written = 0;
  for (const auto& [label, ms] : breakdown) {
    std::fprintf(f, "    \"%s\": %.4f%s\n", label.c_str(), ms,
                 ++written == breakdown.size() ? "" : ",");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  FlagParser flags = std::move(parsed).value();
  if (Status s = ApplyGlobalFlags(flags); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const int64_t threads_flag = flags.GetInt("threads", 0);
  const int repeats = static_cast<int>(flags.GetInt("repeats", 5));
  const std::string out = flags.GetString("out", "BENCH_kernels.json");

  // The bench-specific --threads flag wins over --kernel-threads.
  SetKernelThreads(threads_flag);
  const int64_t parallel_threads = KernelThreads();
  std::printf("=== kernel bench (parallel variant: %" PRId64
              " threads, hw=%u) ===\n\n",
              parallel_threads, std::thread::hardware_concurrency());

  // Representative CTR shapes: batch x concatenated-embedding x hidden for
  // the MLP towers, plus the paper-scale acceptance shape 512x256x256.
  const std::vector<std::vector<int64_t>> shapes = {
      {256, 32, 64}, {256, 64, 32}, {512, 256, 256},
      {1024, 128, 128}, {2048, 64, 256}};

  Rng rng(42);
  std::vector<Entry> entries;
  double serial_512 = 0.0, parallel_512 = 0.0;
  for (const auto& s : shapes) {
    const int64_t m = s[0], k = s[1], n = s[2];
    Tensor a = RandomTensor(m, k, &rng);
    Tensor b = RandomTensor(k, n, &rng);
    Tensor at = ops::Transpose(a);  // [k, m] for MatMulTransA
    Tensor bt = ops::Transpose(b);  // [n, k] for MatMulTransB

    entries.push_back(Measure("matmul", "serial", m, k, n, 1, repeats,
                              [&] { ops::MatMulNaive(a, b); }));
    SetKernelThreads(1);
    entries.push_back(Measure("matmul", "blocked", m, k, n, 1, repeats,
                              [&] { ops::MatMul(a, b); }));
    SetKernelThreads(threads_flag);
    entries.push_back(Measure("matmul", "parallel", m, k, n,
                              parallel_threads, repeats,
                              [&] { ops::MatMul(a, b); }));
    entries.push_back(Measure("matmul_ta", "parallel", m, k, n,
                              parallel_threads, repeats,
                              [&] { ops::MatMulTransA(at, b); }));
    entries.push_back(Measure("matmul_tb", "parallel", m, k, n,
                              parallel_threads, repeats,
                              [&] { ops::MatMulTransB(a, bt); }));
    if (m == 512 && k == 256 && n == 256) {
      serial_512 = entries[entries.size() - 5].gflops;
      parallel_512 = entries[entries.size() - 3].gflops;
      // Cross-variant sanity: the rewrite must agree with the seed kernel.
      Tensor ref = ops::MatMulNaive(a, b);
      Tensor got = ops::MatMul(a, b);
      if (!ops::AllClose(ref, got, 1e-4f)) {
        std::fprintf(stderr, "FATAL: blocked kernel diverges from seed\n");
        return 1;
      }
    }
    std::printf("\n");
  }

  // Elementwise bandwidth probe (Axpy streams 3 floats per element).
  {
    const int64_t size = 1 << 22;
    Tensor x = RandomTensor(1, size, &rng);
    Tensor y = RandomTensor(1, size, &rng);
    SetKernelThreads(1);
    const double s1 = TimeBest([&] { ops::AxpyInPlace(&y, x, 0.5f); }, repeats);
    SetKernelThreads(threads_flag);
    const double sp = TimeBest([&] { ops::AxpyInPlace(&y, x, 0.5f); }, repeats);
    const double bytes = 12.0 * static_cast<double>(size);
    std::printf("  axpy            serial    %" PRId64
                " elems            %8.3f ms  %7.2f GB/s\n",
                size, s1 * 1e3, bytes / s1 / 1e9);
    std::printf("  axpy            parallel  %" PRId64
                " elems  threads=%-2" PRId64 " %8.3f ms  %7.2f GB/s\n",
                size, parallel_threads, sp * 1e3, bytes / sp / 1e9);
  }

  if (serial_512 > 0.0) {
    std::printf("\n512x256x256 speedup (parallel vs seed serial): %.2fx\n",
                parallel_512 / serial_512);
  }
  WriteJson(out, parallel_threads, entries);
  if (std::string obs_error; !obs::WriteConfiguredOutputs(&obs_error)) {
    std::fprintf(stderr, "observability output: %s\n", obs_error.c_str());
    return 1;
  }
  return 0;
}
