// Table VI: ablation study of DN and DR over MLP on all five benchmark
// datasets.
//
// Variants: MAMDR (DN+DR), w/o DN (= DR only), w/o DR (= DN only),
// w/o DN+DR (= plain Alternate MLP). Expected shape: both components help;
// the full combination is best; removing DR hurts most where sparse domains
// exist (Amazon-13); removing DN hurts more as the domain count grows
// (Taobao-30).
#include <cstdio>

#include "bench/bench_util.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("Table VI: ablation of DN and DR (MLP base)");

  struct DatasetEntry {
    const char* label;
    data::SyntheticConfig config;
  };
  const std::vector<DatasetEntry> datasets = {
      {"Amazon-6", data::Amazon6Like(0.5, 17)},
      {"Amazon-13", data::Amazon13Like(0.5, 17)},
      {"Taobao-10", data::TaobaoLike(10, 1.0, 17)},
      {"Taobao-20", data::TaobaoLike(20, 1.0, 17)},
      {"Taobao-30", data::TaobaoLike(30, 1.0, 17)},
  };

  struct Variant {
    const char* label;
    const char* framework;
  };
  const std::vector<Variant> variants = {
      {"MLP+MAMDR (DN+DR)", "MAMDR"},
      {"w/o DN", "DR"},
      {"w/o DR", "DN"},
      {"w/o DN+DR", "Alternate"},
  };

  for (const auto& de : datasets) {
    auto result = data::Generate(de.config);
    MAMDR_CHECK(result.ok()) << result.status().ToString();
    const auto& ds = result.value();
    const auto mc = bench::BenchModelConfig(ds);
    const auto tc = bench::BenchTrainConfig(/*epochs=*/8, 3);

    std::vector<metrics::MethodResult> results;
    for (const auto& v : variants) {
      metrics::MethodResult r;
      r.method = v.label;
      r.domain_auc = bench::RunMethod("MLP", v.framework, ds, mc, tc);
      results.push_back(std::move(r));
      std::fprintf(stderr, "[table6] %s / %s done\n", de.label, v.label);
    }
    std::printf("--- %s ---\n%s\n", de.label,
                metrics::FormatRankTable(metrics::ComputeRankTable(results))
                    .c_str());
  }
  return 0;
}
