// Scalability (§III-C / §IV-C): DN's O(n) per-epoch cost vs the O(n^2) of
// CDR-style pairwise transfer and PCGrad, measured in single-domain training
// passes / batch steps / wall time as the domain count grows.
//
// Expected shape: DN's and MAMDR's per-epoch domain passes grow linearly in
// n (MAMDR = (k+1)n, Algorithm 3); CDR-Transfer grows quadratically; PCGrad
// processes one batch per domain per step, so its *gradient computations*
// per epoch also scale ~n^2 relative to a fixed batch budget (and each step
// performs O(n^2) pairwise projections).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "core/framework_registry.h"
#include "obs/clock.h"

using namespace mamdr;

int main() {
  bench::PrintHeader("Complexity: domain passes per epoch vs domain count");

  std::printf("%-14s %8s %14s %12s %12s\n", "framework", "domains",
              "domain passes", "batch steps", "seconds");
  for (int n : {5, 10, 20}) {
    auto gen = data::TaobaoLike(10, 1.0, 17);
    // Build n equal-size domains so the pass counts are comparable.
    gen.domains.clear();
    for (int d = 0; d < n; ++d) {
      gen.domains.push_back({"C" + std::to_string(d), 220, 0.3, 0.6});
    }
    gen.name = "complexity-" + std::to_string(n);
    auto ds = data::Generate(gen).value();
    const auto mc = bench::BenchModelConfig(ds);

    for (const char* fw_name : {"DN", "MAMDR", "CDR-Transfer", "PCGrad"}) {
      auto tc = bench::BenchTrainConfig(/*epochs=*/1, 3);
      tc.dr_max_batches = 2;
      Rng rng(mc.seed);
      auto model = models::CreateModel("MLP", mc, &rng).value();
      auto fw = core::CreateFramework(fw_name, model.get(), &ds, tc).value();
      const double start = obs::MonotonicSeconds();
      fw->TrainEpoch();
      const double secs = obs::MonotonicSeconds() - start;
      std::printf("%-14s %8d %14lld %12lld %12.3f\n", fw_name, n,
                  static_cast<long long>(fw->domain_pass_count()),
                  static_cast<long long>(fw->batch_step_count()), secs);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nNote: PCGrad reports 0 domain passes because it interleaves one\n"
      "batch per domain per step; its cost appears in wall time (each step\n"
      "does n backward passes plus O(n^2) gradient projections).\n");
  return 0;
}
