// bench_serving: end-to-end throughput/latency of the serving path.
//
// Drives the Recommender with a deterministic workload (fixed-seed
// synthetic dataset, untrained MLP replica, round-robin user/domain
// requests) under a sweep of SERVING threads — concurrent request
// threads calling into one shared Recommender — and reports QPS, exact
// sample latency quantiles, and scaling efficiency. The kernel pool is
// pinned serial (SetKernelThreads(1)): requests are embarrassingly
// parallel across serving threads, so the right axis to scale is
// request concurrency, not intra-request kernel fan-out. Two modes run
// per thread count:
//
//   per_request  each serving thread loops Recommender::TopK — the
//                reference path, one model forward per request
//   batched      each serving thread groups kBatch requests and calls
//                Recommender::TopKBatched — one coalesced forward per
//                domain group (bit-identical results by construction)
//
// scaling_efficiency = qps@N / (min(N, hw_threads) * qps@1) for the
// same mode. The min() clamp keeps the metric meaningful on machines
// with fewer cores than the sweep's widest point: with 1 hardware
// thread, perfect scaling is flat QPS, not Nx. Results go to stdout and
// to a machine-readable BENCH_serving.json that tools/mamdr_perfdiff.py
// diffs against the checked-in baseline in CI (perfdiff also enforces
// QPS monotonicity across the thread sweep — the regression gate for
// the negative scaling this bench exists to catch).
//
// Quantiles in the JSON are nearest-rank over the per-request sample
// vector, NOT read back from the obs latency histogram: the log2 bucket
// layout quantizes by up to 2x, which would rival the perfdiff fail
// gate. In batched mode each sample is one TopKBatched call (the
// user-perceived latency of every request in that batch). The
// histogram-derived summary is still printed (dogfooding the /metrics
// pipeline) but never gated on.
//
// Flags:
//   --requests N  requests per sweep entry (default 1024; keep it high
//                 enough that p99 sits tens of samples deep in the
//                 tail, or one scheduler hiccup on a shared runner can
//                 trip the 2x perfdiff hard gate — but short enough
//                 that a whole cycle fits inside one speed regime)
//   --k N         top-K size per request (default 10)
//   --batch N     requests coalesced per TopKBatched call (default 8)
//   --repeats N   full sweep cycles to run (default 33). Each cycle
//                 measures EVERY (mode, threads) entry back to back; the
//                 reported wall time per entry is the trimmed mean of the
//                 middle third of its cycles (33 cycles -> middle 11).
//                 Many short cycles beat few long ones: each cycle fits
//                 inside one speed regime and the trimmed mean averages
//                 over more independent samples.
//                 Shared runners drift between multi-second speed regimes
//                 (CPU quota refresh, noisy neighbors), so a single
//                 cycle's numbers carry that cycle's idiosyncratic noise,
//                 and per-entry bests would mix regimes across entries —
//                 either one turns the cross-entry ratios (scaling
//                 efficiency, the perfdiff qps-vs-threads gate) into a
//                 lottery. Trimming discards regime-outlier cycles on
//                 both sides (the kept middle is regime-aligned across
//                 entries because cycles hit all entries alike), and
//                 averaging the survivors shrinks within-regime noise a
//                 bare median would keep.
//   --out PATH    JSON output path (default BENCH_serving.json)
#include <algorithm>
#include <atomic>
#include <functional>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/parallel_for.h"
#include "data/synthetic.h"
#include "models/registry.h"
#include "obs/clock.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "serve/recommender.h"

using namespace mamdr;

namespace {

struct Entry {
  std::string mode;
  int64_t threads;
  int64_t domains;
  int64_t requests;
  double qps;
  double scaling_efficiency;
  double mean_us;
  double p50_us;
  double p95_us;
  double p99_us;
};

/// Exact nearest-rank quantile over a sorted sample vector.
double SampleQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

/// Spawns `threads` serving threads running `body(t)` and measures only
/// the serving work: threads rendezvous on a start barrier after spawn,
/// each stamps its own start/end around the request loop, and the wall
/// time is max(end) - min(start). std::thread creation costs tens of
/// microseconds apiece — ~1% of a sweep entry at 8 threads, a systematic
/// per-thread-count bias the monotonicity gate would otherwise eat.
double TimedServe(int64_t threads,
                  const std::function<void(int64_t)>& body) {
  std::atomic<int64_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<double> t_start(static_cast<size_t>(threads));
  std::vector<double> t_end(static_cast<size_t>(threads));
  std::vector<std::thread> pool;
  for (int64_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_relaxed);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      t_start[static_cast<size_t>(t)] = obs::MonotonicSeconds();
      body(t);
      t_end[static_cast<size_t>(t)] = obs::MonotonicSeconds();
    });
  }
  while (ready.load(std::memory_order_relaxed) < threads) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const double first = *std::min_element(t_start.begin(), t_start.end());
  const double last = *std::max_element(t_end.begin(), t_end.end());
  return last - first;
}

/// Runs `requests` TopK calls split across `threads` serving threads
/// against the shared Recommender. Returns wall seconds; appends each
/// request's latency (us) to `lat_us` (order is per-thread, merged).
double RunPerRequest(serve::Recommender& rec, int64_t threads,
                     int64_t requests, int64_t domains, int64_t users,
                     int64_t topk, std::vector<double>* lat_us) {
  const int64_t per_thread = requests / threads;
  std::vector<std::vector<double>> lats(static_cast<size_t>(threads));
  const double secs = TimedServe(threads, [&](int64_t t) {
    auto& mine = lats[static_cast<size_t>(t)];
    mine.reserve(static_cast<size_t>(per_thread));
    for (int64_t i = 0; i < per_thread; ++i) {
      const int64_t g = t * per_thread + i;  // global request index
      const int64_t d = g % domains;
      const int64_t user = (g * 7919) % users;
      const int64_t r0 = obs::MonotonicMicros();
      rec.TopK(user, d, topk);
      mine.push_back(static_cast<double>(obs::MonotonicMicros() - r0));
    }
  });
  for (auto& v : lats) lat_us->insert(lat_us->end(), v.begin(), v.end());
  return secs;
}

/// Same workload, but each serving thread coalesces `batch` consecutive
/// requests into one TopKBatched call. One latency sample per batch.
double RunBatched(serve::Recommender& rec, int64_t threads,
                  int64_t requests, int64_t domains, int64_t users,
                  int64_t topk, int64_t batch, std::vector<double>* lat_us) {
  const int64_t per_thread = requests / threads;
  std::vector<std::vector<double>> lats(static_cast<size_t>(threads));
  const double secs = TimedServe(threads, [&](int64_t t) {
    auto& mine = lats[static_cast<size_t>(t)];
    mine.reserve(static_cast<size_t>((per_thread + batch - 1) / batch));
    std::vector<serve::Recommender::TopKRequest> reqs;
    for (int64_t i = 0; i < per_thread; i += batch) {
      reqs.clear();
      const int64_t n = std::min(batch, per_thread - i);
      for (int64_t j = 0; j < n; ++j) {
        const int64_t g = t * per_thread + i + j;
        reqs.push_back({(g * 7919) % users, g % domains, topk});
      }
      const int64_t r0 = obs::MonotonicMicros();
      rec.TopKBatched(reqs);
      mine.push_back(static_cast<double>(obs::MonotonicMicros() - r0));
    }
  });
  for (auto& v : lats) lat_us->insert(lat_us->end(), v.begin(), v.end());
  return secs;
}

void WriteJson(const std::string& path, int64_t requests,
               const std::vector<Entry>& entries) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"requests_per_sweep\": %" PRId64 ",\n", requests);
  std::fprintf(f, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"threads\": %" PRId64
                 ", \"domains\": %" PRId64 ", \"requests\": %" PRId64
                 ", \"qps\": %.2f, \"scaling_efficiency\": %.3f"
                 ", \"mean_us\": %.2f, \"p50_us\": %.2f, "
                 "\"p95_us\": %.2f, \"p99_us\": %.2f}%s\n",
                 e.mode.c_str(), e.threads, e.domains, e.requests, e.qps,
                 e.scaling_efficiency, e.mean_us, e.p50_us, e.p95_us,
                 e.p99_us, i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  FlagParser flags = std::move(parsed).value();
  if (Status s = ApplyGlobalFlags(flags); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const int64_t requests = flags.GetInt("requests", 1024);
  const int64_t topk = flags.GetInt("k", 10);
  const int64_t batch = flags.GetInt("batch", 8);
  const int64_t repeats = flags.GetInt("repeats", 33);
  const std::string out = flags.GetString("out", "BENCH_serving.json");

  // The sweep scales serving threads; intra-request kernels stay serial so
  // two requests never contend for the same fork/join pool.
  SetKernelThreads(1);

  // Fixed-seed workload: same dataset, same (untrained) replica weights,
  // same request sequence on every run and every machine.
  auto ds = data::Generate(data::TaobaoLike(10, 0.5, 23)).value();
  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};
  Rng rng(mc.seed);
  auto model = models::CreateModel("MLP", mc, &rng).value();
  serve::Recommender rec(model.get());
  for (int64_t d = 0; d < ds.num_domains(); ++d) {
    std::set<int64_t> items;
    for (const auto& it : ds.domain(d).train) items.insert(it.item);
    rec.SetCandidates(d, {items.begin(), items.end()});
  }

  const unsigned hw_raw = std::thread::hardware_concurrency();
  const int64_t hw = hw_raw == 0 ? 1 : static_cast<int64_t>(hw_raw);
  std::printf("=== serving bench (%" PRId64 " requests/sweep, top-%" PRId64
              ", %" PRId64 " domains, batch %" PRId64
              ", %" PRId64 " hw threads) ===\n\n",
              requests, topk, ds.num_domains(), batch, hw);

  // Warmup: touch every domain once so snapshot growth and metric
  // registration happen off the timed path.
  for (int64_t d = 0; d < ds.num_domains(); ++d) rec.TopK(0, d, topk);

  // One config per (threads, mode). Every cycle measures every config;
  // each entry then reports the trimmed mean of its middle-third cycle
  // wall times, with latencies from the median cycle (see the --repeats
  // comment for why).
  struct Config {
    int64_t threads = 1;
    bool batched = false;
    double best_secs = 0.0;
    std::vector<double> lat_us;
    std::vector<double> cycle_secs;
    std::vector<std::vector<double>> cycle_lat;
  };
  std::vector<Config> configs;
  for (const int64_t threads :
       {int64_t{1}, int64_t{2}, int64_t{4}, int64_t{8}}) {
    for (const bool batched : {false, true}) {
      Config c;
      c.threads = threads;
      c.batched = batched;
      configs.push_back(std::move(c));
    }
  }
  // Serpentine cycle order: even cycles sweep configs forward, odd ones
  // backward. A slow monotone speed drift WITHIN a cycle otherwise always
  // lands on the same configs (thread counts ascend through the cycle),
  // biasing exactly the ratios the monotonicity gate checks; alternating
  // direction makes the position bias cancel across cycles.
  for (int64_t rep = 0; rep < repeats; ++rep) {
    for (size_t step = 0; step < configs.size(); ++step) {
      const size_t ci =
          rep % 2 == 0 ? step : configs.size() - 1 - step;
      Config& c = configs[ci];
      std::vector<double> rep_lat;
      const double secs =
          c.batched ? RunBatched(rec, c.threads, requests, ds.num_domains(),
                                 ds.num_users(), topk, batch, &rep_lat)
                    : RunPerRequest(rec, c.threads, requests,
                                    ds.num_domains(), ds.num_users(), topk,
                                    &rep_lat);
      c.cycle_secs.push_back(secs);
      c.cycle_lat.push_back(std::move(rep_lat));
    }
  }
  for (Config& c : configs) {
    std::vector<size_t> order(c.cycle_secs.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return c.cycle_secs[a] < c.cycle_secs[b];
    });
    // Trimmed mean of the middle third of cycles (7 cycles -> middle 3):
    // robust to regime-outlier cycles on either side, and averaging the
    // survivors shrinks within-regime noise that a bare median keeps.
    const size_t n = order.size();
    const size_t drop = n / 3;
    double total = 0.0;
    size_t kept = 0;
    for (size_t i = drop; i < n - drop; ++i) {
      total += c.cycle_secs[order[i]];
      ++kept;
    }
    c.best_secs = total / static_cast<double>(kept);
    // Latency percentiles pool the samples of every KEPT cycle: the kept
    // middle is same-regime by construction, so merging is coherent, and
    // the deeper pool steadies p99 — at 8 serving threads on a busy core
    // a single cycle leaves p99 only ~10 samples deep, where one
    // scheduler quantum outlier can swing it past the perfdiff gate.
    c.lat_us.clear();
    for (size_t i = drop; i < n - drop; ++i) {
      auto& cyc = c.cycle_lat[order[i]];
      c.lat_us.insert(c.lat_us.end(), cyc.begin(), cyc.end());
    }
  }

  // Efficiency is computed from the final best-of-N numbers so both sides
  // of the ratio come from quiet-window measurements.
  std::vector<Entry> entries;
  double qps1_per_request = 0.0;
  double qps1_batched = 0.0;
  for (const Config& c : configs) {
    if (c.threads == 1) {
      (c.batched ? qps1_batched : qps1_per_request) =
          static_cast<double>(requests) / c.best_secs;
    }
  }
  for (Config& c : configs) {
    std::sort(c.lat_us.begin(), c.lat_us.end());
    double sum = 0.0;
    for (double v : c.lat_us) sum += v;
    Entry e;
    e.mode = c.batched ? "batched" : "per_request";
    e.threads = c.threads;
    e.domains = ds.num_domains();
    e.requests = requests;
    e.qps = static_cast<double>(requests) / c.best_secs;
    const double qps1 = c.batched ? qps1_batched : qps1_per_request;
    const double ideal =
        static_cast<double>(std::min(c.threads, hw)) * qps1;
    e.scaling_efficiency = ideal > 0.0 ? e.qps / ideal : 0.0;
    e.mean_us = sum / static_cast<double>(c.lat_us.size());
    e.p50_us = SampleQuantile(c.lat_us, 0.50);
    e.p95_us = SampleQuantile(c.lat_us, 0.95);
    e.p99_us = SampleQuantile(c.lat_us, 0.99);
    entries.push_back(e);
    std::printf("  %-11s threads=%-2" PRId64 " %8.1f qps  eff %.3f  "
                "mean %8.1f us  p50 %8.1f  p95 %8.1f  p99 %8.1f\n",
                e.mode.c_str(), e.threads, e.qps, e.scaling_efficiency,
                e.mean_us, e.p50_us, e.p95_us, e.p99_us);
  }

  // Dogfood the /metrics pipeline: the same latencies as seen through the
  // log-bucketed histogram (quantized — reporting only, never gated).
  obs::Histogram* h = obs::LatencyHistogram(&obs::Registry::Global(),
                                            "serve.topk.latency_micros");
  const obs::LatencySummary s = obs::Summarize(h->snapshot());
  std::printf("\n  histogram view: count %" PRIu64
              "  p50 %.1f us  p95 %.1f us  p99 %.1f us\n",
              s.count, s.p50, s.p95, s.p99);

  WriteJson(out, requests, entries);
  return 0;
}
