// bench_serving: end-to-end throughput/latency of the serving path.
//
// Drives Recommender::TopK with a deterministic workload (fixed-seed
// synthetic dataset, untrained MLP replica, round-robin user/domain
// requests) at 1/2/4 kernel threads and reports QPS plus exact sample
// latency quantiles. Results go to stdout and to a machine-readable
// BENCH_serving.json that tools/mamdr_perfdiff.py diffs against the
// checked-in baseline in CI.
//
// Quantiles in the JSON are nearest-rank over the per-request sample
// vector, NOT read back from the obs latency histogram: the log2 bucket
// layout quantizes by up to 2x, which would rival the perfdiff fail gate.
// The histogram-derived summary is still printed (dogfooding the /metrics
// pipeline) but never gated on.
//
// Flags:
//   --requests N  requests per thread-count sweep (default 2048; keep it
//                 high enough that p99 sits tens of samples deep in the
//                 tail, or one scheduler hiccup on a shared runner can
//                 trip the 2x perfdiff hard gate)
//   --k N         top-K size per request (default 10)
//   --out PATH    JSON output path (default BENCH_serving.json)
#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/parallel_for.h"
#include "data/synthetic.h"
#include "models/registry.h"
#include "obs/clock.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "serve/recommender.h"

using namespace mamdr;

namespace {

struct Entry {
  int64_t threads;
  int64_t domains;
  int64_t requests;
  double qps;
  double mean_us;
  double p50_us;
  double p95_us;
  double p99_us;
};

/// Exact nearest-rank quantile over a sorted sample vector.
double SampleQuantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(rank, sorted.size()) - 1];
}

void WriteJson(const std::string& path, int64_t requests,
               const std::vector<Entry>& entries) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"requests_per_sweep\": %" PRId64 ",\n", requests);
  std::fprintf(f, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    std::fprintf(f,
                 "    {\"threads\": %" PRId64 ", \"domains\": %" PRId64
                 ", \"requests\": %" PRId64
                 ", \"qps\": %.2f, \"mean_us\": %.2f, \"p50_us\": %.2f, "
                 "\"p95_us\": %.2f, \"p99_us\": %.2f}%s\n",
                 e.threads, e.domains, e.requests, e.qps, e.mean_us,
                 e.p50_us, e.p95_us, e.p99_us,
                 i + 1 == entries.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = FlagParser::Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 2;
  }
  FlagParser flags = std::move(parsed).value();
  if (Status s = ApplyGlobalFlags(flags); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 2;
  }
  const int64_t requests = flags.GetInt("requests", 2048);
  const int64_t topk = flags.GetInt("k", 10);
  const std::string out = flags.GetString("out", "BENCH_serving.json");

  // Fixed-seed workload: same dataset, same (untrained) replica weights,
  // same request sequence on every run and every machine.
  auto ds = data::Generate(data::TaobaoLike(10, 0.5, 23)).value();
  models::ModelConfig mc;
  mc.num_users = ds.num_users();
  mc.num_items = ds.num_items();
  mc.num_domains = ds.num_domains();
  mc.embedding_dim = 16;
  mc.hidden = {64, 32};
  Rng rng(mc.seed);
  auto model = models::CreateModel("MLP", mc, &rng).value();
  serve::Recommender rec(model.get());
  for (int64_t d = 0; d < ds.num_domains(); ++d) {
    std::set<int64_t> items;
    for (const auto& it : ds.domain(d).train) items.insert(it.item);
    rec.SetCandidates(d, {items.begin(), items.end()});
  }

  std::printf("=== serving bench (%" PRId64 " requests/sweep, top-%" PRId64
              ", %" PRId64 " domains) ===\n\n",
              requests, topk, ds.num_domains());

  std::vector<Entry> entries;
  for (const int64_t threads : {int64_t{1}, int64_t{2}, int64_t{4}}) {
    SetKernelThreads(threads);
    // Warmup: touch every domain once so pool growth and metric
    // registration happen off the timed path.
    for (int64_t d = 0; d < ds.num_domains(); ++d) rec.TopK(0, d, topk);

    std::vector<double> lat_us;
    lat_us.reserve(static_cast<size_t>(requests));
    const double t0 = obs::MonotonicSeconds();
    for (int64_t i = 0; i < requests; ++i) {
      const int64_t d = i % ds.num_domains();
      const int64_t user = (i * 7919) % ds.num_users();
      const int64_t r0 = obs::MonotonicMicros();
      rec.TopK(user, d, topk);
      lat_us.push_back(static_cast<double>(obs::MonotonicMicros() - r0));
    }
    const double secs = obs::MonotonicSeconds() - t0;

    std::sort(lat_us.begin(), lat_us.end());
    double sum = 0.0;
    for (double v : lat_us) sum += v;
    Entry e;
    e.threads = threads;
    e.domains = ds.num_domains();
    e.requests = requests;
    e.qps = static_cast<double>(requests) / secs;
    e.mean_us = sum / static_cast<double>(requests);
    e.p50_us = SampleQuantile(lat_us, 0.50);
    e.p95_us = SampleQuantile(lat_us, 0.95);
    e.p99_us = SampleQuantile(lat_us, 0.99);
    entries.push_back(e);
    std::printf("  threads=%-2" PRId64 " %8.1f qps  mean %8.1f us  "
                "p50 %8.1f  p95 %8.1f  p99 %8.1f\n",
                e.threads, e.qps, e.mean_us, e.p50_us, e.p95_us, e.p99_us);
  }

  // Dogfood the /metrics pipeline: the same latencies as seen through the
  // log-bucketed histogram (quantized — reporting only, never gated).
  obs::Histogram* h = obs::LatencyHistogram(&obs::Registry::Global(),
                                            "serve.topk.latency_micros");
  const obs::LatencySummary s = obs::Summarize(h->snapshot());
  std::printf("\n  histogram view: count %" PRIu64
              "  p50 %.1f us  p95 %.1f us  p99 %.1f us\n",
              s.count, s.p50, s.p95, s.p99);

  WriteJson(out, requests, entries);
  return 0;
}
